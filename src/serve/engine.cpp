#include "serve/engine.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace utilrisk::serve {

namespace {

/// Latency buckets for the request-path histograms: 10 µs .. 10 s.
const std::vector<double>& request_time_buckets() {
  static const std::vector<double> buckets = {
      1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2,
      1e-1, 3e-1, 1.0,  3.0,  10.0};
  return buckets;
}

const std::vector<double>& batch_size_buckets() {
  static const std::vector<double> buckets = {1,  2,  4,   8,   16,
                                              32, 64, 128, 256, 512};
  return buckets;
}

}  // namespace

AdmissionEngine::AdmissionEngine(const EngineConfig& config)
    : config_(config), queue_(config.queue_capacity) {
  config_.machine.validate();
  simulator_.logger().set_level(config_.log_level);
  simulator_.set_metrics(config_.metrics);

  policy::PolicyContext context;
  context.simulator = &simulator_;
  context.machine = config_.machine;
  context.model = config_.model;
  context.pricing = config_.pricing;
  context.first_reward = config_.first_reward;
  context.metrics = config_.metrics;
  context.log_level = config_.log_level;
  service_ = std::make_unique<service::ComputingService>(
      simulator_, service::factory_for(config_.policy), context);

  requests_metric_ = obs::counter_or_null(config_.metrics, "serve.requests");
  accepted_metric_ = obs::counter_or_null(config_.metrics, "serve.accepted");
  rejected_metric_ = obs::counter_or_null(config_.metrics, "serve.rejected");
  busy_metric_ = obs::counter_or_null(config_.metrics, "serve.busy");
  queue_depth_metric_ =
      obs::gauge_or_null(config_.metrics, "serve.queue_depth");
  queue_wait_metric_ = obs::histogram_or_null(
      config_.metrics, "serve.queue_wait_seconds", request_time_buckets());
  batch_size_metric_ = obs::histogram_or_null(
      config_.metrics, "serve.batch_size", batch_size_buckets());
  tick_seconds_metric_ = obs::histogram_or_null(
      config_.metrics, "serve.tick_seconds", request_time_buckets());
}

AdmissionEngine::~AdmissionEngine() { drain(); }

void AdmissionEngine::start() {
  if (started_.exchange(true)) return;
  thread_ = std::thread([this] { engine_loop(); });
}

bool AdmissionEngine::submit(const Request& request, Completion completion) {
  if (requests_metric_ != nullptr) requests_metric_->inc();
  Pending pending{request, std::move(completion),
                  std::chrono::steady_clock::now()};
  const bool queued = queue_.try_push(std::move(pending));
  if (!queued && busy_metric_ != nullptr) busy_metric_->inc();
  if (queue_depth_metric_ != nullptr) {
    queue_depth_metric_->set(static_cast<double>(queue_.size()));
  }
  return queued;
}

Response AdmissionEngine::make_busy_response(const Request& request) const {
  Response response;
  response.id = request.id;
  response.status = Status::Busy;
  response.retry_after_ms = config_.retry_after_ms;
  return response;
}

void AdmissionEngine::pause() { queue_.hold(); }

void AdmissionEngine::resume() { queue_.release(); }

void AdmissionEngine::engine_loop() {
  std::vector<Pending> batch;
  batch.reserve(config_.max_batch);
  for (;;) {
    // The hold (pause()) gate lives inside pop_wait, so a paused engine
    // consumes nothing — not even an item it was already waiting on.
    std::optional<Pending> first = queue_.pop_wait();
    if (!first.has_value()) break;  // closed and drained
    batch.clear();
    batch.push_back(std::move(*first));
    // Coalesce whatever else is already queued into this tick. Batch
    // composition only affects grouping — virtual times come from the
    // requests themselves, so decisions are batch-invariant.
    queue_.try_pop_batch(batch, config_.max_batch - 1);
    if (queue_depth_metric_ != nullptr) {
      queue_depth_metric_->set(static_cast<double>(queue_.size()));
    }
    if (batch_size_metric_ != nullptr) {
      batch_size_metric_->observe(static_cast<double>(batch.size()));
    }
    const auto tick_start = std::chrono::steady_clock::now();
    for (Pending& pending : batch) {
      process(pending);
    }
    ++stats_.batches;
    if (tick_seconds_metric_ != nullptr) {
      tick_seconds_metric_->observe(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        tick_start)
              .count());
    }
  }
}

void AdmissionEngine::process(Pending& pending) {
  if (queue_wait_metric_ != nullptr) {
    queue_wait_metric_->observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      pending.enqueued_at)
            .count());
  }
  const Request& request = pending.request;
  // The virtual clock never rewinds: a request claiming an instant the
  // engine has already passed is admitted "now" on the virtual axis.
  virtual_now_ = std::max(virtual_now_, request.submit_time);
  const workload::Job job = to_job(request, next_job_id_++, virtual_now_);

  // Advance the world to the submission instant (starts/finishes of
  // earlier jobs fire here), then submit and dispatch the decision event.
  simulator_.run(virtual_now_);
  service_->submit_all({job});
  simulator_.run(virtual_now_);

  const service::SlaRecord& record = service_->metrics().record(job.id);
  Response response;
  response.id = request.id;
  response.virtual_time = virtual_now_;
  response.risk = risk_index(job);
  if (record.accepted()) {
    response.status = Status::Accepted;
    // The commodity model fixes the charge at acceptance; the bid model
    // settles from completion time, so the budget is the price cap the
    // user is quoted.
    response.price = config_.model == economy::EconomicModel::CommodityMarket
                         ? record.quoted_cost
                         : job.budget;
    accepted_work_ += job.work();
    ++stats_.accepted;
    if (accepted_metric_ != nullptr) accepted_metric_->inc();
  } else {
    response.status = Status::Rejected;
    ++stats_.rejected;
    if (rejected_metric_ != nullptr) rejected_metric_->inc();
  }
  ++stats_.processed;
  decision_digest_.add(decision_hash(response));
  if (pending.completion) pending.completion(response);
}

double AdmissionEngine::risk_index(const workload::Job& job) const {
  // Outstanding backlog (accepted-but-undelivered processor-seconds, this
  // job included) relative to the capacity the machine can deliver within
  // this job's deadline window: ~0 on an idle service, ->1 as admission
  // outpaces delivery. Purely simulation-state-derived, so deterministic.
  const double backlog = std::max(
      0.0, accepted_work_ - service_->active_policy().delivered_proc_seconds()
               + job.work());
  const double capacity = static_cast<double>(config_.machine.node_count) *
                          std::max(job.deadline_duration, 1.0);
  return std::clamp(backlog / capacity, 0.0, 1.0);
}

EngineStats AdmissionEngine::drain() {
  std::lock_guard drain_lock(drain_mutex_);
  if (drained_.load()) return stats_;
  queue_.close();
  resume();  // a paused engine must still drain
  if (started_.load() && thread_.joinable()) thread_.join();
  // Run the simulation to quiescence so every accepted job settles; the
  // engine thread is joined, so this thread is now the (only) owner.
  simulator_.run();
  virtual_now_ = std::max(virtual_now_, simulator_.now());
  for (const auto& [id, record] : service_->metrics().records()) {
    if (record.outcome == workload::JobOutcome::FulfilledSLA) {
      ++stats_.fulfilled;
    } else if (record.outcome == workload::JobOutcome::ViolatedSLA) {
      ++stats_.violated;
    }
  }
  stats_.events_dispatched = simulator_.events_dispatched();
  stats_.virtual_end_time = virtual_now_;
  stats_.decision_digest = verify::to_hex(decision_digest_.value());
  drained_.store(true);
  return stats_;
}

}  // namespace utilrisk::serve
