#include "serve/engine.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace utilrisk::serve {

namespace {

/// Latency buckets for the request-path histograms: 10 µs .. 10 s.
const std::vector<double>& request_time_buckets() {
  static const std::vector<double> buckets = {
      1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2,
      1e-1, 3e-1, 1.0,  3.0,  10.0};
  return buckets;
}

const std::vector<double>& batch_size_buckets() {
  static const std::vector<double> buckets = {1,  2,  4,   8,   16,
                                              32, 64, 128, 256, 512};
  return buckets;
}

/// Element hash of one live policy switch for the order-independent
/// decision digest: replay and recovery must fold the identical value, so
/// it is a pure function of the switch record (key, per-key decision
/// count, from, to) — never of wall-clock or journal position.
[[nodiscard]] std::uint64_t switch_event_hash(const SwitchRecord& record) {
  verify::DigestStream stream;
  stream.put_string("switch");
  stream.put_u64(record.key);
  stream.put_u64(record.at);
  stream.put_string(record.from);
  stream.put_string(record.to);
  return stream.value();
}

void accumulate_inputs(core::ObjectiveInputs& into,
                       const core::ObjectiveInputs& add) {
  into.submitted += add.submitted;
  into.accepted += add.accepted;
  into.fulfilled += add.fulfilled;
  into.wait_sum_fulfilled += add.wait_sum_fulfilled;
  into.total_utility += add.total_utility;
  into.total_budget += add.total_budget;
}

}  // namespace

AdmissionEngine::AdmissionEngine(const EngineConfig& config)
    : config_(config), queue_(config.queue_capacity) {
  config_.machine.validate();

  requests_metric_ = obs::counter_or_null(config_.metrics, "serve.requests");
  accepted_metric_ = obs::counter_or_null(config_.metrics, "serve.accepted");
  rejected_metric_ = obs::counter_or_null(config_.metrics, "serve.rejected");
  busy_metric_ = obs::counter_or_null(config_.metrics, "serve.busy");
  shed_metric_ = obs::counter_or_null(config_.metrics, "serve.shed_total");
  brownout_metric_ =
      obs::counter_or_null(config_.metrics, "serve.brownout_total");
  advise_metric_ =
      obs::counter_or_null(config_.metrics, "serve.advise_queries");
  evaluations_metric_ =
      obs::counter_or_null(config_.metrics, "serve.advisor_evaluations");
  switches_metric_ =
      obs::counter_or_null(config_.metrics, "serve.policy_switches");
  queue_depth_metric_ =
      obs::gauge_or_null(config_.metrics, "serve.queue_depth");
  queue_wait_metric_ = obs::histogram_or_null(
      config_.metrics, "serve.queue_wait_seconds", request_time_buckets());
  batch_size_metric_ = obs::histogram_or_null(
      config_.metrics, "serve.batch_size", batch_size_buckets());
  tick_seconds_metric_ = obs::histogram_or_null(
      config_.metrics, "serve.tick_seconds", request_time_buckets());

  if (config_.brownout_watermark < 1.0) {
    brownout_threshold_ = std::max<std::size_t>(
        1, static_cast<std::size_t>(config_.brownout_watermark *
                                    static_cast<double>(queue_.capacity())));
  }

  // The advisor must exist before any journal replay: switch points fire
  // inside decide(), and recovery re-derives pre-crash switches by
  // replaying the request sequence through the same path.
  {
    advise::ShadowContext shadow;
    shadow.model = config_.model;
    shadow.machine = config_.machine;
    shadow.pricing = config_.pricing;
    shadow.first_reward = config_.first_reward;
    advisor_ = std::make_unique<advise::AdvisorEngine>(
        config_.advisor, shadow, config_.policy);
  }

  if (!config_.journal_dir.empty()) {
    recover_from_journal();
    JournalConfig journal_config;
    journal_config.directory = config_.journal_dir;
    journal_config.fsync = config_.fsync;
    journal_config.max_segment_records = config_.journal_segment_records;
    journal_config.metrics = config_.metrics;
    journal_ = std::make_unique<JournalWriter>(journal_config);
  }
}

void AdmissionEngine::recover_from_journal() {
  recovery_.attempted = true;
  const RecoveredJournal recovered = load_journal(config_.journal_dir);
  recovery_.segments = recovered.segments;
  recovery_.truncated_records = recovered.truncated_records;
  recovery_.truncated_bytes = recovered.truncated_bytes;
  if (auto* counter =
          obs::counter_or_null(config_.metrics, "serve.recovery_truncated")) {
    counter->inc(recovered.truncated_records);
  }
  if (recovered.empty()) return;
  // Replay every surviving request through the same pure decision path
  // live requests take. Decisions are a function of the request sequence
  // alone, so the replayed state — clock, policy, digest — is exactly the
  // pre-crash state.
  for (const Request& request : recovered.requests) {
    (void)decide(request);
    ++recovery_.replayed;
    if (recovery_.replayed == recovered.last_tick_processed) {
      // This is the instant the pre-crash process recorded its digest;
      // the replica must agree here, byte for byte.
      recovery_.journal_digest = recovered.last_tick_digest;
      recovery_.replayed_digest = verify::to_hex(decision_digest_.value());
      recovery_.digest_match =
          recovery_.replayed_digest == recovery_.journal_digest;
    }
  }
  if (auto* counter =
          obs::counter_or_null(config_.metrics, "serve.recovery_replayed")) {
    counter->inc(recovery_.replayed);
  }
  if (!recovery_.digest_match) {
    throw JournalError(
        "recovery digest mismatch: journal recorded " +
        recovery_.journal_digest + " after " +
        std::to_string(recovered.last_tick_processed) +
        " requests but replay produced " + recovery_.replayed_digest +
        " — refusing to serve on top of a divergent recovery");
  }
  // The journalled switch records must be a prefix of the replayed ones:
  // a crash can lose a trailing sw record whose triggering request
  // survived (replay then *re-derives* that switch), but a journalled
  // switch replay failed to reproduce means the decision streams
  // diverged.
  if (recovered.switches.size() > session_switches_.size()) {
    throw JournalError(
        "recovery switch mismatch: journal recorded " +
        std::to_string(recovered.switches.size()) +
        " policy switch(es) but replay produced only " +
        std::to_string(session_switches_.size()));
  }
  for (std::size_t i = 0; i < recovered.switches.size(); ++i) {
    const SwitchRecord& journalled = recovered.switches[i];
    const SwitchRecord& replayed = session_switches_[i];
    if (journalled.key != replayed.key || journalled.at != replayed.at ||
        journalled.from != replayed.from || journalled.to != replayed.to) {
      throw JournalError(
          "recovery switch mismatch at record " + std::to_string(i + 1) +
          ": journal has key " + verify::to_hex(journalled.key) + " " +
          journalled.from + "->" + journalled.to + " at " +
          std::to_string(journalled.at) + " but replay produced key " +
          verify::to_hex(replayed.key) + " " + replayed.from + "->" +
          replayed.to + " at " + std::to_string(replayed.at));
    }
  }
}

AdmissionEngine::~AdmissionEngine() { drain(); }

void AdmissionEngine::start() {
  if (started_.exchange(true)) return;
  thread_ = std::thread([this] { engine_loop(); });
}

bool AdmissionEngine::submit(const Request& request, Completion completion) {
  if (requests_metric_ != nullptr) requests_metric_->inc();
  // Brownout: above the high watermark the engine is already minutes of
  // decisions behind — answering busy/retry-after now is kinder (and
  // cheaper) than queueing work that will only be shed later.
  if (queue_.size() >= brownout_threshold_) {
    brownout_count_.fetch_add(1, std::memory_order_relaxed);
    if (brownout_metric_ != nullptr) brownout_metric_->inc();
    if (busy_metric_ != nullptr) busy_metric_->inc();
    return false;
  }
  Pending pending{request, std::move(completion),
                  std::chrono::steady_clock::now()};
  const bool queued = queue_.try_push(std::move(pending));
  if (!queued && busy_metric_ != nullptr) busy_metric_->inc();
  if (queue_depth_metric_ != nullptr) {
    queue_depth_metric_->set(static_cast<double>(queue_.size()));
  }
  return queued;
}

Response AdmissionEngine::make_busy_response(const Request& request) const {
  Response response;
  response.id = request.id;
  response.status = Status::Busy;
  response.retry_after_ms = config_.retry_after_ms;
  return response;
}

void AdmissionEngine::pause() { queue_.hold(); }

void AdmissionEngine::resume() { queue_.release(); }

void AdmissionEngine::engine_loop() {
  std::vector<Pending> batch;
  batch.reserve(config_.max_batch);
  std::vector<std::pair<Completion, Response>> completions;
  completions.reserve(config_.max_batch);
  // Group commit (FsyncPolicy::Batch): completions waiting for the fsync
  // that makes their decisions durable. Only ever non-empty while the
  // queue has backlog, so the next tick — and with it the next sync
  // opportunity — is always imminent.
  std::vector<std::pair<Completion, Response>> deferred;
  const bool group_commit =
      journal_ != nullptr && config_.fsync == FsyncPolicy::Batch;
  auto last_sync = std::chrono::steady_clock::now();
  for (;;) {
    // The hold (pause()) gate lives inside pop_wait, so a paused engine
    // consumes nothing — not even an item it was already waiting on.
    std::optional<Pending> first = queue_.pop_wait();
    if (!first.has_value()) break;  // closed and drained
    batch.clear();
    completions.clear();
    batch.push_back(std::move(*first));
    // Coalesce whatever else is already queued into this tick. Batch
    // composition only affects grouping — virtual times come from the
    // requests themselves, so decisions are batch-invariant.
    queue_.try_pop_batch(batch, config_.max_batch - 1);
    if (queue_depth_metric_ != nullptr) {
      queue_depth_metric_->set(static_cast<double>(queue_.size()));
    }
    if (batch_size_metric_ != nullptr) {
      batch_size_metric_->observe(static_cast<double>(batch.size()));
    }
    const auto tick_start = std::chrono::steady_clock::now();
    bool decided_any = false;
    for (Pending& pending : batch) {
      const auto now = std::chrono::steady_clock::now();
      if (queue_wait_metric_ != nullptr) {
        queue_wait_metric_->observe(
            std::chrono::duration<double>(now - pending.enqueued_at).count());
      }
      const Request& request = pending.request;
      // Deadline-aware shedding: a request whose wall-clock decision
      // budget ran out while it queued is answered `shed` and never
      // simulated. Sheds are a wall-clock artefact, so they stay out of
      // the journal and the decision digest — replaying the same request
      // stream without the overload reproduces the same digest.
      if (request.deadline_ms > 0.0 &&
          std::chrono::duration<double, std::milli>(now - pending.enqueued_at)
                  .count() > request.deadline_ms) {
        Response response;
        response.id = request.id;
        response.status = Status::Shed;
        response.message = "decision deadline expired in queue";
        ++stats_.shed;
        if (shed_metric_ != nullptr) shed_metric_->inc();
        completions.emplace_back(std::move(pending.completion),
                                 std::move(response));
        continue;
      }
      // Advise queries are read-only: answered from advisor state without
      // touching the journal, the decision digest or the estimators, so a
      // session's digest is invariant under however many advise queries
      // clients interleave (docs/ADVISOR.md).
      if (request.kind == RequestKind::Advise) {
        ++stats_.advise_queries;
        if (advise_metric_ != nullptr) advise_metric_->inc();
        completions.emplace_back(std::move(pending.completion),
                                 answer_advise(request));
        continue;
      }
      // Write-ahead: the request hits the journal before the simulator,
      // so every decision the digest ever covered is re-derivable from
      // disk. The fsync (under Batch) waits for the tick record below.
      if (journal_ != nullptr) journal_->append_request(request);
      decided_any = true;
      completions.emplace_back(std::move(pending.completion),
                               decide(request));
    }
    bool synced = !group_commit;
    if (journal_ != nullptr && decided_any) {
      // The tick record carries the running digest — the recovery oracle.
      // Under FsyncPolicy::Batch this is also the durability point: one
      // fsync covers the whole batch — or, while backlog persists, one
      // fsync per group_commit_ms covers several ticks whose completions
      // wait in `deferred` until it lands.
      const auto now = std::chrono::steady_clock::now();
      const bool sync_now =
          !group_commit || queue_.size() == 0 ||
          std::chrono::duration<double, std::milli>(now - last_sync)
                  .count() >= config_.group_commit_ms;
      journal_->append_tick(stats_.processed,
                            verify::to_hex(decision_digest_.value()),
                            sync_now);
      if (sync_now) {
        last_sync = now;
        synced = true;
      }
    }
    // Completions fire only after the fsync covering their tick record
    // landed: no client learns a decision the journal could still lose.
    // (A tick that only shed needs no durability — sheds are never
    // journalled — so its completions go out even mid-window.)
    if (synced) {
      for (auto& [completion, response] : deferred) {
        if (completion) completion(response);
      }
      deferred.clear();
    }
    if (synced || !decided_any) {
      for (auto& [completion, response] : completions) {
        if (completion) completion(response);
      }
    } else {
      std::move(completions.begin(), completions.end(),
                std::back_inserter(deferred));
    }
    ++stats_.batches;
    if (tick_seconds_metric_ != nullptr) {
      tick_seconds_metric_->observe(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        tick_start)
              .count());
    }
  }
  // Queue closed: make any group-committed tail durable, then release its
  // completions — drain() must never win a race against a pending fsync.
  if (!deferred.empty()) {
    if (journal_ != nullptr) journal_->sync();
    for (auto& [completion, response] : deferred) {
      if (completion) completion(response);
    }
  }
}

AdmissionEngine::TenantState& AdmissionEngine::state_for(std::uint64_t key) {
  const auto [it, inserted] = tenants_.try_emplace(key);
  TenantState& state = it->second;
  if (inserted) {
    state.simulator.logger().set_level(config_.log_level);
    state.simulator.set_metrics(config_.metrics);
    policy::PolicyContext context;
    context.simulator = &state.simulator;
    context.machine = config_.machine;
    context.model = config_.model;
    context.pricing = config_.pricing;
    context.first_reward = config_.first_reward;
    context.metrics = config_.metrics;
    context.log_level = config_.log_level;
    state.service = std::make_unique<service::ComputingService>(
        state.simulator, service::factory_for(config_.policy), context);
  }
  return state;
}

Response AdmissionEngine::decide(const Request& request) {
  // Each routing key decides inside its own isolated world, so a decision
  // depends only on its own key's prior requests — the invariant behind
  // shard-count-independent merged digests (see header comment).
  const std::uint64_t key = routing_key(request);
  TenantState& state = state_for(key);
  // The virtual clock never rewinds: a request claiming an instant the
  // engine has already passed is admitted "now" on the virtual axis.
  state.virtual_now = std::max(state.virtual_now, request.submit_time);
  const workload::Job job =
      to_job(request, state.next_job_id++, state.virtual_now);

  // Advance the world to the submission instant (starts/finishes of
  // earlier jobs fire here), then submit and dispatch the decision event.
  state.simulator.run(state.virtual_now);
  state.service->submit_all({job});
  state.simulator.run(state.virtual_now);

  const service::SlaRecord& record = state.service->metrics().record(job.id);
  Response response;
  response.id = request.id;
  response.tenant = request.tenant;
  response.shard = config_.shard_index;
  response.virtual_time = state.virtual_now;
  response.risk = risk_index(state, job);
  if (record.accepted()) {
    response.status = Status::Accepted;
    // The commodity model fixes the charge at acceptance; the bid model
    // settles from completion time, so the budget is the price cap the
    // user is quoted.
    response.price = config_.model == economy::EconomicModel::CommodityMarket
                         ? record.quoted_cost
                         : job.budget;
    state.accepted_work += job.work();
    ++stats_.accepted;
    if (accepted_metric_ != nullptr) accepted_metric_->inc();
  } else {
    response.status = Status::Rejected;
    ++stats_.rejected;
    if (rejected_metric_ != nullptr) rejected_metric_->inc();
  }
  ++stats_.processed;
  decision_digest_.add(decision_hash(response));

  // Feed the advisor: the submitted job joins the key's rolling window
  // (accepted or not — a candidate policy might have decided differently)
  // and the key's cumulative objective values give the live estimators
  // their next sample. Pure bookkeeping — no digest impact.
  core::ObjectiveInputs live_inputs = state.settled_inputs;
  accumulate_inputs(live_inputs,
                    state.service->metrics().rolling_objective_inputs());
  advisor_->observe(key, job, core::compute_objectives(live_inputs));

  // Deterministic switch point: every effective_every() decided requests
  // of this key's own subsequence. Fires identically under live serving,
  // recovery replay and any sharding of the other keys.
  if (advisor_->at_switch_point(key)) {
    const advise::Evaluation evaluation = advisor_->evaluate(key);
    ++stats_.advisor_evaluations;
    if (evaluations_metric_ != nullptr) evaluations_metric_->inc();
    if (evaluation.switched) {
      apply_policy_switch(key, state, evaluation);
    }
  }
  return response;
}

Response AdmissionEngine::answer_advise(const Request& request) {
  Response response;
  response.id = request.id;
  response.tenant = request.tenant;
  response.shard = config_.shard_index;
  try {
    const advise::Snapshot snapshot = advisor_->query(
        routing_key(request), request.weights, request.risk_aversion);
    response.status = Status::Advice;
    auto body = std::make_shared<AdviceBody>();
    body->active = snapshot.active;
    body->recommended = snapshot.recommended;
    body->decided = snapshot.decided;
    body->evaluations = snapshot.evaluations;
    body->switches = snapshot.switches;
    body->samples = snapshot.samples;
    body->estimate_mean = snapshot.estimate_mean;
    body->estimate_stddev = snapshot.estimate_stddev;
    body->ranked.reserve(snapshot.ranked.size());
    for (const advise::RankedPolicy& entry : snapshot.ranked) {
      body->ranked.push_back(RankedPolicyWire{entry.policy, entry.score,
                                              entry.performance,
                                              entry.volatility});
    }
    body->digest = verify::to_hex(snapshot.digest);
    response.advice = std::move(body);
  } catch (const std::exception& e) {
    response.status = Status::Error;
    response.message = std::string("advise failed: ") + e.what();
  }
  return response;
}

void AdmissionEngine::apply_policy_switch(
    std::uint64_t key, TenantState& state,
    const advise::Evaluation& evaluation) {
  // Quiesce this key's world first: the serve-path policies are
  // admission-driven, so run() drains every in-flight start/finish event
  // (the same contract drain() relies on). The old service then holds
  // only settled jobs and can be torn down safely.
  state.simulator.run();
  state.virtual_now = std::max(state.virtual_now, state.simulator.now());

  // Fold the old service's outcomes into the key's settled accumulators
  // (all ObjectiveInputs fields are additive), so live estimates and the
  // drain totals keep covering the whole session across services.
  const service::MetricsCollector& metrics = state.service->metrics();
  accumulate_inputs(state.settled_inputs, metrics.objective_inputs());
  state.settled_fulfilled +=
      metrics.outcome_count(workload::JobOutcome::FulfilledSLA);
  state.settled_violated +=
      metrics.outcome_count(workload::JobOutcome::ViolatedSLA);

  // Rebuild the service under the new policy on the same simulator: the
  // virtual clock, event counter and job-id sequence continue, the
  // admission backlog restarts from zero (everything accepted so far has
  // been delivered at quiescence).
  policy::PolicyContext context;
  context.simulator = &state.simulator;
  context.machine = config_.machine;
  context.model = config_.model;
  context.pricing = config_.pricing;
  context.first_reward = config_.first_reward;
  context.metrics = config_.metrics;
  context.log_level = config_.log_level;
  state.service = std::make_unique<service::ComputingService>(
      state.simulator, service::factory_for(evaluation.to), context);
  state.accepted_work = 0.0;

  SwitchRecord record;
  record.key = key;
  record.at = evaluation.at;
  record.from = std::string(policy::to_string(evaluation.from));
  record.to = std::string(policy::to_string(evaluation.to));
  // The switch is part of the decision stream: fold it into the digest so
  // replay/recovery must reproduce it bit-identically, and journal it
  // (live sessions only — journal_ is null during recovery replay, which
  // re-derives the same switch from the request sequence).
  decision_digest_.add(switch_event_hash(record));
  ++stats_.policy_switches;
  if (switches_metric_ != nullptr) switches_metric_->inc();
  if (journal_ != nullptr) journal_->append_switch(record);
  session_switches_.push_back(std::move(record));
}

double AdmissionEngine::risk_index(const TenantState& state,
                                   const workload::Job& job) const {
  // Outstanding backlog (accepted-but-undelivered processor-seconds, this
  // job included) relative to the capacity the machine can deliver within
  // this job's deadline window: ~0 on an idle service, ->1 as admission
  // outpaces delivery. Purely simulation-state-derived (and per routing
  // key, like the rest of the decision), so deterministic.
  const double backlog = std::max(
      0.0, state.accepted_work -
               state.service->active_policy().delivered_proc_seconds() +
               job.work());
  const double capacity = static_cast<double>(config_.machine.node_count) *
                          std::max(job.deadline_duration, 1.0);
  return std::clamp(backlog / capacity, 0.0, 1.0);
}

EngineStats AdmissionEngine::drain() {
  std::lock_guard drain_lock(drain_mutex_);
  if (drained_.load()) return stats_;
  queue_.close();
  resume();  // a paused engine must still drain
  if (started_.load() && thread_.joinable()) thread_.join();
  // Run every routing key's simulation to quiescence so accepted jobs
  // settle; the engine thread is joined, so this thread is now the (only)
  // owner of the per-key worlds.
  for (auto& [key, state] : tenants_) {
    state.simulator.run();
    state.virtual_now = std::max(state.virtual_now, state.simulator.now());
    for (const auto& [id, record] : state.service->metrics().records()) {
      if (record.outcome == workload::JobOutcome::FulfilledSLA) {
        ++stats_.fulfilled;
      } else if (record.outcome == workload::JobOutcome::ViolatedSLA) {
        ++stats_.violated;
      }
    }
    // Jobs settled under this key's previous policies (live switches
    // rebuild the service; their outcomes live in the accumulators).
    stats_.fulfilled += state.settled_fulfilled;
    stats_.violated += state.settled_violated;
    stats_.events_dispatched += state.simulator.events_dispatched();
    stats_.virtual_end_time =
        std::max(stats_.virtual_end_time, state.virtual_now);
  }
  stats_.decision_digest = verify::to_hex(decision_digest_.value());
  stats_.digest = decision_digest_;
  stats_.brownout = brownout_count_.load(std::memory_order_relaxed);
  if (journal_ != nullptr) {
    // Seal the final segment so a later recovery verifies it wholesale
    // instead of line by line.
    journal_->close();
  }
  drained_.store(true);
  return stats_;
}

}  // namespace utilrisk::serve
