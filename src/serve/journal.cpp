#include "serve/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "verify/digest.hpp"

namespace utilrisk::serve {

namespace {

constexpr const char* kSegmentPrefix = "journal-";
constexpr const char* kSegmentSuffix = ".ndjson";
/// Splices the per-line integrity digest onto a record payload.
constexpr const char* kChkKey = ",\"chk\":\"";
/// Cap on buffered record bytes between explicit durability points.
constexpr std::size_t kFlushBytes = 256 * 1024;

[[nodiscard]] std::string errno_message(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

[[nodiscard]] std::string segment_name(std::uint64_t number) {
  char digits[16];
  std::snprintf(digits, sizeof(digits), "%08llu",
                static_cast<unsigned long long>(number));
  return std::string(kSegmentPrefix) + digits + kSegmentSuffix;
}

/// Segment number from a file name, 0 when the name is not a segment.
[[nodiscard]] std::uint64_t parse_segment_name(const std::string& name) {
  const std::size_t prefix = std::strlen(kSegmentPrefix);
  const std::size_t suffix = std::strlen(kSegmentSuffix);
  if (name.size() <= prefix + suffix) return 0;
  if (name.compare(0, prefix, kSegmentPrefix) != 0) return 0;
  if (name.compare(name.size() - suffix, suffix, kSegmentSuffix) != 0) {
    return 0;
  }
  std::uint64_t number = 0;
  for (std::size_t i = prefix; i < name.size() - suffix; ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    number = number * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return number;
}

[[nodiscard]] std::uint64_t line_digest(std::string_view payload) {
  verify::DigestStream stream;
  stream.put_string(payload);
  return stream.value();
}

/// Closes `payload` (a record object missing its final brace) with the
/// per-line chk field.
[[nodiscard]] std::string with_chk(std::string payload) {
  const std::uint64_t chk = line_digest(payload);
  payload += kChkKey;
  payload += verify::to_hex(chk);
  payload += "\"}";
  return payload;
}

/// Verifies and strips a line's chk field. Returns false on a torn,
/// truncated or edited line.
[[nodiscard]] bool check_line(std::string_view line,
                              std::string_view* payload_out) {
  const std::size_t at = line.rfind(kChkKey);
  if (at == std::string_view::npos) return false;
  const std::string_view payload = line.substr(0, at);
  const std::string_view rest = line.substr(at + std::strlen(kChkKey));
  // rest must be exactly `<16 hex>"}`.
  if (rest.size() != 18 || rest.substr(16) != "\"}") return false;
  std::uint64_t recorded = 0;
  try {
    recorded = verify::parse_hex(rest.substr(0, 16));
  } catch (const std::invalid_argument&) {
    return false;
  }
  if (recorded != line_digest(payload)) return false;
  if (payload_out != nullptr) *payload_out = payload;
  return true;
}

/// One parsed journal line.
struct JournalLine {
  enum class Kind { Request, Tick, Seal, Switch } kind = Kind::Request;
  Request request;                   // Kind::Request
  std::uint64_t processed = 0;       // Kind::Tick
  std::string digest;                // Kind::Tick / Kind::Seal
  std::uint64_t seal_records = 0;    // Kind::Seal
  SwitchRecord sw;                   // Kind::Switch
};

/// Parses one chk-verified record payload. Throws JournalError on an
/// envelope that verified its chk but does not decode — that is writer
/// corruption, not a torn tail.
[[nodiscard]] JournalLine parse_journal_line(std::string_view payload) {
  JournalLine record;
  // The request body is embedded verbatim as the wire encoding; slice it
  // back out and reuse parse_request. The chk already vouched for the
  // bytes, so structural failures below are writer bugs, not torn tails.
  constexpr std::string_view kReqKey = "\"req\":";
  obs::json::Value doc;
  try {
    doc = obs::json::parse(std::string(payload) + "}");
  } catch (const obs::json::ParseError& e) {
    throw JournalError(std::string("undecodable journal record: ") +
                       e.what());
  }
  const obs::json::Value* type = doc.find("type");
  if (type == nullptr || !type->is_string()) {
    throw JournalError("journal record missing 'type'");
  }
  const std::string& kind = type->as_string();
  if (kind == "req") {
    record.kind = JournalLine::Kind::Request;
    const std::size_t at = payload.find(kReqKey);
    if (at == std::string_view::npos) {
      throw JournalError("req record missing embedded request");
    }
    const std::string_view body = payload.substr(at + kReqKey.size());
    try {
      record.request = parse_request(body);
    } catch (const ProtocolError& e) {
      throw JournalError(std::string("undecodable journalled request: ") +
                         e.what());
    }
    return record;
  }
  if (kind == "tick") {
    record.kind = JournalLine::Kind::Tick;
    const obs::json::Value* processed = doc.find("processed");
    const obs::json::Value* digest = doc.find("digest");
    if (processed == nullptr || !processed->is_number() ||
        digest == nullptr || !digest->is_string()) {
      throw JournalError("tick record missing processed/digest");
    }
    record.processed = static_cast<std::uint64_t>(processed->as_number());
    record.digest = digest->as_string();
    return record;
  }
  if (kind == "sw") {
    record.kind = JournalLine::Kind::Switch;
    const obs::json::Value* key = doc.find("key");
    const obs::json::Value* at = doc.find("at");
    const obs::json::Value* from = doc.find("from");
    const obs::json::Value* to = doc.find("to");
    if (key == nullptr || !key->is_string() || at == nullptr ||
        !at->is_number() || from == nullptr || !from->is_string() ||
        to == nullptr || !to->is_string()) {
      throw JournalError("sw record missing key/at/from/to");
    }
    try {
      // Hex-encoded: routing keys use all 64 bits (scenario hashes), which
      // a JSON double cannot carry exactly.
      record.sw.key = verify::parse_hex(key->as_string());
    } catch (const std::invalid_argument&) {
      throw JournalError("sw record has an undecodable key");
    }
    record.sw.at = static_cast<std::uint64_t>(at->as_number());
    record.sw.from = from->as_string();
    record.sw.to = to->as_string();
    return record;
  }
  if (kind == "seal") {
    record.kind = JournalLine::Kind::Seal;
    const obs::json::Value* records = doc.find("records");
    const obs::json::Value* digest = doc.find("digest");
    if (records == nullptr || !records->is_number() || digest == nullptr ||
        !digest->is_string()) {
      throw JournalError("seal record missing records/digest");
    }
    record.seal_records = static_cast<std::uint64_t>(records->as_number());
    record.digest = digest->as_string();
    return record;
  }
  throw JournalError("unknown journal record type '" + kind + "'");
}

[[nodiscard]] std::vector<std::pair<std::uint64_t, std::string>>
list_segments(const std::string& directory) {
  std::vector<std::pair<std::uint64_t, std::string>> segments;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    const std::uint64_t number = parse_segment_name(name);
    if (number != 0) segments.emplace_back(number, entry.path().string());
  }
  if (ec) {
    throw JournalError("cannot scan journal directory " + directory + ": " +
                       ec.message());
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

}  // namespace

const char* to_string(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::None: return "none";
    case FsyncPolicy::Batch: return "batch";
    case FsyncPolicy::Always: return "always";
  }
  return "?";
}

FsyncPolicy parse_fsync_policy(const std::string& name) {
  if (name == "none") return FsyncPolicy::None;
  if (name == "batch") return FsyncPolicy::Batch;
  if (name == "always") return FsyncPolicy::Always;
  throw std::invalid_argument("unknown fsync policy '" + name +
                              "' (none|batch|always)");
}

// ------------------------------------------------------------------- load

RecoveredJournal load_journal(const std::string& directory) {
  RecoveredJournal result;
  if (!std::filesystem::exists(directory)) return result;
  const auto segments = list_segments(directory);
  result.segments = segments.size();

  for (std::size_t s = 0; s < segments.size(); ++s) {
    const auto& [number, path] = segments[s];
    const bool newest = s + 1 == segments.size();
    std::ifstream in(path, std::ios::binary);
    if (!in) throw JournalError("cannot open journal segment " + path);

    verify::DigestStream segment_digest;
    std::uint64_t segment_records = 0;
    bool sealed = false;
    std::uint64_t offset = 0;        // bytes consumed, incl. newline
    std::uint64_t valid_bytes = 0;   // offset after the last intact record
    std::size_t dropped = 0;
    std::string line;
    while (std::getline(in, line)) {
      const bool complete = !in.eof();  // getline at EOF = no newline
      const std::uint64_t line_bytes = line.size() + (complete ? 1 : 0);
      std::string_view payload;
      if (!complete || !check_line(line, &payload)) {
        // Torn or edited tail. Expected crash damage only on the newest
        // segment; anywhere else the journal lost sealed history.
        if (!newest) {
          throw JournalError("segment " + path +
                             " has a corrupt record before its seal");
        }
        ++dropped;
        // Count any further (unreachable-by-contract) lines as dropped.
        while (std::getline(in, line)) ++dropped;
        break;
      }
      offset += line_bytes;
      JournalLine record = parse_journal_line(payload);
      if (record.kind == JournalLine::Kind::Seal) {
        if (record.seal_records != segment_records ||
            record.digest != verify::to_hex(segment_digest.value())) {
          throw JournalError("segment " + path +
                             " fails its seal digest (tampered or "
                             "corrupted mid-journal)");
        }
        sealed = true;
        valid_bytes = offset;
        // A seal is the last record by construction; anything after it
        // is damage.
        if (std::getline(in, line)) {
          if (!newest) {
            throw JournalError("segment " + path +
                               " has records after its seal");
          }
          ++dropped;
          while (std::getline(in, line)) ++dropped;
        }
        break;
      }
      segment_digest.put_string(line);
      ++segment_records;
      valid_bytes = offset;
      if (record.kind == JournalLine::Kind::Request) {
        result.requests.push_back(std::move(record.request));
      } else if (record.kind == JournalLine::Kind::Switch) {
        result.switches.push_back(std::move(record.sw));
      } else {
        result.last_tick_digest = std::move(record.digest);
        result.last_tick_processed = record.processed;
      }
    }
    in.close();

    if (sealed) {
      ++result.sealed_segments;
    } else if (!newest) {
      throw JournalError("segment " + path +
                         " is unsealed but not the newest segment");
    }
    if (dropped > 0) {
      result.truncated_records += dropped;
      std::error_code ec;
      const std::uint64_t size = std::filesystem::file_size(path, ec);
      if (!ec && size > valid_bytes) {
        result.truncated_bytes += size - valid_bytes;
        std::filesystem::resize_file(path, valid_bytes, ec);
        if (ec) {
          result.warnings.push_back("could not truncate torn tail of " +
                                    path + ": " + ec.message());
        } else {
          result.warnings.push_back(
              "truncated " + std::to_string(dropped) +
              " torn record(s) off " + path);
        }
      }
    }
  }
  return result;
}

// ------------------------------------------------------------------ write

JournalWriter::JournalWriter(const JournalConfig& config) : config_(config) {
  if (config_.directory.empty()) {
    throw JournalError("journal directory must be non-empty");
  }
  if (config_.max_segment_records == 0) config_.max_segment_records = 1;
  std::error_code ec;
  std::filesystem::create_directories(config_.directory, ec);
  if (ec) {
    throw JournalError("cannot create journal directory " +
                       config_.directory + ": " + ec.message());
  }
  for (const auto& [number, path] : list_segments(config_.directory)) {
    next_segment_ = std::max(next_segment_, number + 1);
  }
  appends_metric_ =
      obs::counter_or_null(config_.metrics, "serve.journal_appends");
  fsyncs_metric_ =
      obs::counter_or_null(config_.metrics, "serve.journal_fsyncs");
  rotations_metric_ =
      obs::counter_or_null(config_.metrics, "serve.journal_rotations");
  bytes_metric_ =
      obs::counter_or_null(config_.metrics, "serve.journal_bytes");
  open_segment();
}

JournalWriter::~JournalWriter() { close(); }

void JournalWriter::open_segment() {
  const std::string path =
      (std::filesystem::path(config_.directory) /
       segment_name(next_segment_))
          .string();
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
               0644);
  if (fd_ < 0) {
    throw JournalError(errno_message("cannot open journal segment " + path));
  }
  ++next_segment_;
  segment_records_ = 0;
  seal_fold_ = verify::DigestStream();
  // Make the new directory entry itself durable: a journal whose segment
  // file vanishes with the directory block is no journal.
  if (config_.fsync != FsyncPolicy::None) {
    const int dir_fd =
        ::open(config_.directory.c_str(), O_RDONLY | O_DIRECTORY);
    if (dir_fd >= 0) {
      ::fsync(dir_fd);
      ::close(dir_fd);
    }
  }
}

void JournalWriter::append_line(std::string_view payload) {
  // Splice the chk suffix directly into the buffered line: this runs per
  // request on the engine thread, so no intermediate strings.
  const std::uint64_t chk = line_digest(payload);
  const std::size_t line_start = pending_.size();
  pending_ += payload;
  pending_ += kChkKey;
  pending_ += verify::to_hex(chk);
  pending_ += "\"}";
  const std::size_t line_size = pending_.size() - line_start;
  seal_fold_.put_string(
      std::string_view(pending_.data() + line_start, line_size));
  pending_.push_back('\n');
  ++segment_records_;
  stats_.bytes += line_size + 1;
  if (appends_metric_ != nullptr) appends_metric_->inc();
  if (bytes_metric_ != nullptr) bytes_metric_->inc(line_size + 1);
  // Durability points (ticks, seals, rotation) flush explicitly; a cap
  // bounds the buffer between them on tick-less streams.
  if (config_.fsync == FsyncPolicy::Always ||
      pending_.size() >= kFlushBytes) {
    flush();
    if (config_.fsync == FsyncPolicy::Always) fsync_now();
  }
}

void JournalWriter::flush() {
  if (pending_.empty() || fd_ < 0) return;
  std::size_t written = 0;
  while (written < pending_.size()) {
    const ssize_t n =
        ::write(fd_, pending_.data() + written, pending_.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw JournalError(errno_message("journal write failed"));
    }
    written += static_cast<std::size_t>(n);
  }
  pending_.clear();
}

void JournalWriter::fsync_now() {
  flush();
  if (fd_ < 0) return;
  if (::fsync(fd_) == 0) {
    ++stats_.fsyncs;
    if (fsyncs_metric_ != nullptr) fsyncs_metric_->inc();
  }
}

void JournalWriter::append_request(const Request& request) {
  scratch_.clear();
  scratch_ += "{\"type\":\"req\",\"seq\":";
  scratch_ += std::to_string(next_seq_++);
  scratch_ += ",\"req\":";
  encode_request_to(scratch_, request);
  append_line(scratch_);
  ++stats_.requests;
  if (segment_records_ >= config_.max_segment_records) rotate();
}

void JournalWriter::append_switch(const SwitchRecord& record) {
  scratch_.clear();
  scratch_ += "{\"type\":\"sw\",\"seq\":";
  scratch_ += std::to_string(next_seq_++);
  scratch_ += ",\"key\":\"";
  scratch_ += verify::to_hex(record.key);
  scratch_ += "\",\"at\":";
  scratch_ += std::to_string(record.at);
  scratch_ += ",\"from\":\"";
  scratch_ += record.from;
  scratch_ += "\",\"to\":\"";
  scratch_ += record.to;
  scratch_ += "\"";
  append_line(scratch_);
  ++stats_.switches;
  if (segment_records_ >= config_.max_segment_records) rotate();
}

void JournalWriter::append_tick(std::uint64_t processed,
                                const std::string& digest_hex,
                                bool sync_now) {
  scratch_.clear();
  scratch_ += "{\"type\":\"tick\",\"seq\":";
  scratch_ += std::to_string(next_seq_++);
  scratch_ += ",\"processed\":";
  scratch_ += std::to_string(processed);
  scratch_ += ",\"digest\":\"";
  scratch_ += digest_hex;
  scratch_ += "\"";
  append_line(scratch_);
  ++stats_.ticks;
  if (config_.fsync == FsyncPolicy::Batch && sync_now) {
    fsync_now();
  } else {
    // Even without (or ahead of) the fsync, hand the tick's records to
    // the kernel before the engine releases the batch's completions:
    // under None a process crash alone (page cache survives) must not
    // lose an answered batch.
    flush();
  }
  if (segment_records_ >= config_.max_segment_records) rotate();
}

void JournalWriter::sync() { fsync_now(); }

void JournalWriter::seal_segment() {
  if (fd_ < 0) return;
  if (segment_records_ > 0) {
    // Seal trailer: record count + digest over every record line, so the
    // segment is end-to-end verifiable on the next load.
    std::string payload = "{\"type\":\"seal\",\"records\":";
    payload += std::to_string(segment_records_);
    payload += ",\"digest\":\"";
    payload += verify::to_hex(seal_fold_.value());
    payload += "\"";
    const std::string framed = with_chk(payload);
    pending_ += framed;
    pending_.push_back('\n');
    stats_.bytes += framed.size() + 1;
    if (bytes_metric_ != nullptr) bytes_metric_->inc(framed.size() + 1);
    ++stats_.rotations;
    if (rotations_metric_ != nullptr) rotations_metric_->inc();
  }
  try {
    flush();
  } catch (const JournalError&) {
    pending_.clear();  // best effort: an unsealed tail is chk-recoverable
  }
  if (config_.fsync != FsyncPolicy::None) fsync_now();
  ::close(fd_);
  fd_ = -1;
  seal_fold_ = verify::DigestStream();
}

void JournalWriter::rotate() {
  seal_segment();
  open_segment();
}

void JournalWriter::close() { seal_segment(); }

}  // namespace utilrisk::serve
