// Request-serving front end of `utilrisk serve`.
//
// Accepts newline-delimited-JSON admission requests over a Unix-domain or
// TCP-loopback socket (plus an in-process stdio mode for tests and
// pipelines) and feeds them to the AdmissionEngine's bounded queue:
//
//   acceptor thread --> reader tasks (exp::ThreadPool) --> bounded queue
//        |                    |                                 |
//        |                    +-- parse errors / oversized      engine
//        |                        lines / `busy` backpressure   thread
//        |                        answered inline               |
//        +-- poll() with a stop flag                 completions write
//                                                   responses to the
//                                                   connection (mutexed)
//
// Lifecycle: start() binds and launches the acceptor; stop_and_drain()
// stops accepting, lets readers wind down at the next poll tick, drains
// the engine (every queued request still gets its response — zero dropped
// responses on SIGTERM) and only then closes the connections. The CLI
// maps SIGTERM/SIGINT onto stop_and_drain via an atomic flag.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exp/parallel.hpp"
#include "serve/engine.hpp"

namespace utilrisk::serve {

struct ServerConfig {
  /// Unix-domain socket path (takes precedence when non-empty).
  std::string unix_path;
  /// TCP loopback port; 0 = ephemeral (query bound_port()), -1 = off.
  int tcp_port = -1;
  /// Reader tasks run on an exp::ThreadPool of this size; it also caps
  /// the number of concurrently served connections.
  std::size_t io_threads = 4;
  std::size_t max_line_bytes = kMaxRequestBytes;
  /// Per-connection response buffer cap. Responses queue here when the
  /// peer's socket is full; a client that lets it overflow (not reading
  /// its responses) is disconnected — the engine thread never blocks on a
  /// slow client's socket.
  std::size_t write_buffer_bytes = 256 * 1024;
  /// A connection with buffered responses that makes no write progress
  /// for this long is presumed wedged (slow-loris) and disconnected.
  double write_stall_ms = 5000.0;
};

/// Transport-level session counters (the engine owns the decision ones).
struct ServerStats {
  std::uint64_t connections = 0;
  std::uint64_t lines = 0;      ///< request lines read (any fate)
  std::uint64_t malformed = 0;  ///< parse/validation failures
  std::uint64_t oversized = 0;  ///< lines over max_line_bytes
  std::uint64_t busy = 0;       ///< backpressure rejections sent
  std::uint64_t responses = 0;  ///< response lines written
  /// Connections force-closed by the slow-client defense (write buffer
  /// overflow or a write stall past write_stall_ms).
  std::uint64_t stalled = 0;
};

class Server {
 public:
  /// The engine (single AdmissionEngine or a ShardedEngine fan-out —
  /// any EngineApi) must outlive the server and must be start()ed by the
  /// caller (the server never owns the decision lifecycle).
  Server(const ServerConfig& config, EngineApi& engine);
  /// Joins everything; calls stop_and_drain() if the caller did not.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and launches the acceptor thread. Throws
  /// std::runtime_error on bind/listen failures.
  void start();

  /// Async stop request (safe from any thread; the signal path sets an
  /// atomic the CLI turns into this call).
  void request_stop();

  /// Graceful shutdown: stop accepting, wind readers down, drain the
  /// engine so every queued request is answered, then close connections.
  /// Returns the engine's session stats. Idempotent.
  EngineStats stop_and_drain();

  [[nodiscard]] ServerStats stats() const;

  /// Actual TCP port after start() (ephemeral binds resolve here).
  [[nodiscard]] int bound_port() const { return bound_port_; }

  /// Stdio mode: serves requests from `in` until EOF, writes responses to
  /// `out`, then drains the engine. Single-threaded reads; completions
  /// still arrive from the engine thread (writes are mutexed). Returns
  /// the transport stats of the session.
  static ServerStats run_stdio(EngineApi& engine, std::istream& in,
                               std::ostream& out,
                               std::size_t max_line_bytes = kMaxRequestBytes);

 private:
  struct Connection;

  void acceptor_loop();
  void reader_loop(const std::shared_ptr<Connection>& connection);
  /// Parses/validates one line and routes it (engine, busy, or error).
  void handle_line(const std::shared_ptr<Connection>& connection,
                   std::string line);

  ServerConfig config_;
  EngineApi& engine_;
  exp::ThreadPool io_pool_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> drained_{false};
  std::mutex lifecycle_mutex_;  ///< serialises stop_and_drain callers
  int listen_fd_ = -1;
  int bound_port_ = -1;
  std::thread acceptor_;

  mutable std::mutex connections_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;

  // Transport counters; relaxed atomics (stats() reads are diagnostics).
  std::atomic<std::uint64_t> connections_total_{0};
  std::atomic<std::uint64_t> lines_{0};
  std::atomic<std::uint64_t> malformed_{0};
  std::atomic<std::uint64_t> oversized_{0};
  std::atomic<std::uint64_t> busy_{0};
  std::atomic<std::uint64_t> responses_{0};
  std::atomic<std::uint64_t> stalled_{0};
};

}  // namespace utilrisk::serve
