// Sharded serving: N admission engines behind one consistent-hash router.
//
// `utilrisk serve --shards N` partitions the tenant/scenario space across
// N AdmissionEngine instances, each with its own engine thread, Simulator
// worlds, bounded queue and write-ahead journal. The router hashes the
// request's routing key (protocol.hpp routing_key: tenant, else scenario
// hash, else 0) onto a consistent-hash ring of virtual points, so the
// same key always lands on the same shard — across connections, restarts
// and recoveries.
//
// Digest semantics: each shard keeps its own order-independent decision
// digest; the session digest is their verify::UnorderedDigest::merge.
// Because the engine isolates simulation state per routing key
// (engine.hpp), a request's decision is a pure function of its own key's
// request subsequence — so the merged digest is invariant under shard
// count *and* under how requests interleave across shards. `--shards 1`
// and `--shards 4` over the same request stream produce the same merged
// digest, which is how the golden/replay harness keeps gating the sharded
// server (docs/SERVING.md, docs/DETERMINISM.md).
//
// Journals: shard i appends under `<journal_dir>/shard-000i` (`--shards 1`
// keeps the legacy flat layout, so pre-shard journals recover unchanged).
// A `shards.meta` marker records the shard count; recovery with a
// different `--shards` refuses to start instead of silently re-routing
// journalled tenants onto different simulation states.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/engine.hpp"

namespace utilrisk::serve {

/// Consistent-hash ring: `shard_count` shards, each contributing
/// `kVirtualPoints` points. Deterministic across processes/platforms
/// (fixed mix function, no seeding) — routing must reproduce after a
/// crash for per-shard journal recovery to replay the right requests.
class ShardRouter {
 public:
  static constexpr std::size_t kVirtualPoints = 64;

  explicit ShardRouter(std::size_t shard_count);

  [[nodiscard]] std::size_t shard_for(std::uint64_t routing_key) const;
  [[nodiscard]] std::size_t shard_count() const { return shard_count_; }

 private:
  std::size_t shard_count_;
  /// (ring position, shard) sorted by position; lookup is a binary search
  /// for the first point at or after hash(key), wrapping at the end.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
};

struct ShardedEngineConfig {
  /// Per-shard engine template. `queue_capacity` is per shard;
  /// `journal_dir` is the *root* directory (per-shard segment
  /// subdirectories are derived); `shard_index` is overwritten per shard.
  EngineConfig engine;
  std::size_t shards = 1;
};

/// N engines behind the router, presenting the single-engine surface
/// (EngineApi) to the server front end. Construction recovers every
/// shard's journal (digest-verified, like the single engine) and refuses
/// on a shard-count mismatch with the journal's `shards.meta`.
class ShardedEngine : public EngineApi {
 public:
  explicit ShardedEngine(const ShardedEngineConfig& config);

  void start() override;
  [[nodiscard]] bool submit(const Request& request,
                            Completion completion) override;
  [[nodiscard]] Response make_busy_response(
      const Request& request) const override;
  /// Drains every shard and merges: counters sum, virtual end time is the
  /// max, and the session decision digest is the order-independent merge
  /// of the per-shard digests.
  EngineStats drain() override;

  [[nodiscard]] std::size_t shard_count() const { return engines_.size(); }
  [[nodiscard]] AdmissionEngine& shard(std::size_t index) {
    return *engines_[index];
  }
  [[nodiscard]] const ShardRouter& router() const { return router_; }

  /// Merged crash-recovery outcome: replay totals summed across shards,
  /// digest fields carrying the *merged* post-replay decision digest
  /// (what the recovery banner prints; comparable with a client's merged
  /// session digest).
  [[nodiscard]] RecoveryStats recovery() const;
  /// Summed journal write totals across shards.
  [[nodiscard]] JournalStats journal_stats() const;
  /// Per-shard drain stats (valid after drain()).
  [[nodiscard]] const std::vector<EngineStats>& shard_stats() const {
    return shard_stats_;
  }

 private:
  ShardRouter router_;
  std::vector<std::unique_ptr<AdmissionEngine>> engines_;
  std::vector<EngineStats> shard_stats_;
  EngineStats merged_;
  bool drained_ = false;

  // serve.shard.* instruments (null when metrics are absent/disabled).
  std::vector<obs::Counter*> routed_metrics_;
  std::vector<obs::Gauge*> depth_metrics_;
};

/// The root-directory journal layout knobs shared by writer and guard.
[[nodiscard]] std::string shard_journal_dir(const std::string& root,
                                            std::size_t shard_index,
                                            std::size_t shard_count);

/// Validates `root` against `shards.meta` (writing it when absent) and
/// against the physical layout: a flat legacy journal cannot be reopened
/// sharded, nor a sharded one flat or with a different count. Throws
/// JournalError on mismatch — re-routing journalled tenants onto
/// different shards would silently change their simulation state, the
/// exact cache-collision class PR 4 fixed for `--fail-*` sweep keys.
void check_shard_journal_layout(const std::string& root,
                                std::size_t shard_count);

}  // namespace utilrisk::serve
