// Wire protocol of the online admission service: newline-delimited JSON.
//
// One request per line, one response per line, matched by the
// client-assigned `id`. The protocol carries exactly the information a
// user hands the commercial computing service when negotiating an SLA
// (paper §5.3): resource demand, runtime estimate, deadline, budget and
// penalty rate — plus `runtime`, the ground-truth runtime the simulation
// backend needs to realise the job (a real deployment would observe it;
// the protocol makes the simulation's omniscience explicit instead of
// hiding it).
//
// Requests:
//   {"type":"submit","id":7,"t":123.0,"procs":8,"runtime":600,
//    "estimate":900,"deadline":3600,"budget":4800,"penalty":1.5,
//    "urgency":"high"}
//   {"type":"advise","id":8,"weights":[0.25,0.25,0.25,0.25],
//    "risk_aversion":0.5}                             (read-only query)
// Responses:
//   {"id":7,"status":"accepted","price":4800,"risk":0.12,"t":123.0}
//   {"id":7,"status":"rejected","price":0,"risk":0.87,"t":123.0}
//   {"id":7,"status":"busy","retry_after_ms":50}      (backpressure)
//   {"id":7,"status":"shed","message":"..."}          (deadline expired)
//   {"id":8,"status":"advice","active":"Libra","recommended":"FCFS-BF",
//    "ranked":[...],"digest":"..."}                   (docs/ADVISOR.md)
//   {"id":0,"status":"error","message":"parse error at offset 12"}
//
// Encoding/decoding reuses obs::json; malformed input raises
// ProtocolError with a user-facing message that the server echoes back in
// an `error` response instead of dying.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "workload/job.hpp"

namespace utilrisk::serve {

/// Hard cap on one request line (bytes, newline excluded). Lines beyond
/// this are rejected with an `error` response before JSON parsing — a
/// mis-framed or hostile client must not balloon server memory.
inline constexpr std::size_t kMaxRequestBytes = 16 * 1024;

/// Thrown by the parse functions on malformed or invalid input; the
/// message is sent back to the client verbatim.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// What a request line asks for.
enum class RequestKind : std::uint8_t {
  Submit = 0,  ///< job submission (the SLA negotiation)
  /// Online advisor query ({"type":"advise",...}): ranked candidate
  /// policies for the caller's objective weights + risk aversion against
  /// the routing key's live workload mix. Strictly read-only — advise
  /// requests never touch the decision digest, the journal or the
  /// advisor's estimators (docs/ADVISOR.md).
  Advise = 1,
};

/// One SLA-annotated job-submission request.
struct Request {
  /// Client-assigned correlation id (echoed in the response).
  std::uint64_t id = 0;
  /// Virtual submission instant (seconds on the workload's arrival
  /// clock). The engine clamps it monotonically, so a client replaying a
  /// seeded arrival process gets bit-identical admission decisions
  /// (docs/SERVING.md "determinism").
  double submit_time = 0.0;
  std::uint32_t procs = 1;
  /// Ground-truth runtime (seconds) the backend realises the job with.
  double runtime = 0.0;
  /// User-visible runtime estimate the policy decides from.
  double estimate = 0.0;
  /// SLA terms, as durations/amounts from submission (§5.3).
  double deadline = 0.0;
  double budget = 0.0;
  double penalty_rate = 0.0;
  workload::Urgency urgency = workload::Urgency::Low;
  /// Optional wall-clock budget (milliseconds) for the *admission
  /// decision itself* — distinct from `deadline`, which is the job's SLA
  /// deadline on the virtual clock. A request still queued when this
  /// budget expires is shed (Status::Shed) instead of simulated: under
  /// overload the server spends its capacity on requests whose answers
  /// someone still wants. 0 = no decision deadline.
  double deadline_ms = 0.0;
  /// Owning tenant (0 = unattributed). The sharded server routes by it
  /// (serve/shard.hpp) and the engine stamps it on the simulated job, so
  /// tenant-attributed decisions digest distinctly (decision_hash).
  std::uint32_t tenant = 0;
  /// Routing fallback for tenantless traffic: requests sharing a scenario
  /// key land on the same shard (and the same isolated simulation state).
  /// Empty = the default shared state.
  std::string scenario;

  // --- advise-only fields (RequestKind::Advise) -------------------------
  RequestKind kind = RequestKind::Submit;
  /// Objective weights (wait, SLA, reliability, profitability); must sum
  /// to 1. Equal split when the line omits "weights".
  std::array<double, 4> weights = {0.25, 0.25, 0.25, 0.25};
  /// mean - lambda * sigma risk aversion; 0.5 when omitted.
  double risk_aversion = 0.5;
};

enum class Status : std::uint8_t {
  Accepted,  ///< SLA admitted; `price` is the quoted charge
  Rejected,  ///< admission control refused the SLA
  Busy,      ///< bounded queue full — backpressure; retry after the hint
  Error,     ///< malformed/oversized request; `message` says why
  /// Dropped before simulation: the request's `deadline_ms` decision
  /// budget expired while it waited in the admission queue. Sheds are a
  /// wall-clock artefact and never enter the decision digest.
  Shed,
  /// Answer to an `advise` query; Response::advice carries the body.
  Advice,
};

[[nodiscard]] const char* to_string(Status status);

/// One response line.
struct Response {
  std::uint64_t id = 0;
  Status status = Status::Error;
  /// Quoted admission charge (commodity model quote; the job's budget
  /// under the bid model). Zero unless accepted.
  double price = 0.0;
  /// Load-based risk index in [0, 1]: the service's outstanding work
  /// backlog (plus this job) relative to what the machine can deliver
  /// within this job's deadline. 0 = idle service, 1 = saturated.
  double risk = 0.0;
  /// Engine virtual time at the decision.
  double virtual_time = 0.0;
  /// Backpressure hint (Status::Busy only), milliseconds.
  double retry_after_ms = 0.0;
  /// Tenant echo (0 = unattributed); folded into decision_hash when set.
  std::uint32_t tenant = 0;
  /// Which engine shard decided (sharded serving only; -1 = unsharded).
  /// Deliberately *not* part of decision_hash — the merged digest must be
  /// invariant under shard count and request routing.
  int shard = -1;
  /// Human-readable diagnostic (Status::Error only).
  std::string message;
  /// Advisor answer (Status::Advice only, null otherwise); shared_ptr so
  /// Response stays cheap to copy through the queue/buffer plumbing.
  std::shared_ptr<struct AdviceBody> advice;
};

/// One ranked candidate in an advice response.
struct RankedPolicyWire {
  std::string policy;
  double score = 0.0;
  double performance = 0.0;
  double volatility = 0.0;
};

/// Body of an `advise` response: the routing key's live advisor state
/// scored under the caller's preferences.
struct AdviceBody {
  std::string active;       ///< the key's currently active policy
  std::string recommended;  ///< best-ranked candidate (== active when the
                            ///< advisor has no data yet)
  std::uint64_t decided = 0;
  std::uint64_t evaluations = 0;
  std::uint64_t switches = 0;
  std::uint64_t samples = 0;
  /// Live observed objective estimates, kAllObjectives order (wait, SLA,
  /// reliability, profitability) — raw objective units.
  std::array<double, 4> estimate_mean{};
  std::array<double, 4> estimate_stddev{};
  std::vector<RankedPolicyWire> ranked;  ///< best first
  /// Recommendation digest, 16 lowercase hex chars: a pure function of
  /// the advisor state + preferences, so identical histories answer
  /// identically (docs/DETERMINISM.md).
  std::string digest;
};

/// Parses one request line. Throws ProtocolError — and only
/// ProtocolError, whatever the input bytes — on malformed JSON, invalid
/// UTF-8, over-deep nesting, wrong/missing/mis-typed fields, or values
/// that violate SLA preconditions (non-positive runtime/deadline,
/// negative budget/penalty, zero procs). The error message is safe to
/// echo to a peer: input-derived fragments are sanitised to printable
/// ASCII and length-clamped.
[[nodiscard]] Request parse_request(std::string_view line);

/// Serialises a request to one line (no trailing newline).
[[nodiscard]] std::string encode_request(const Request& request);

/// Appends the one-line encoding to `out` (the allocation-free form the
/// journal's write-ahead hot path uses).
void encode_request_to(std::string& out, const Request& request);

/// Parses one response line (used by the load generator). Throws
/// ProtocolError on malformed input.
[[nodiscard]] Response parse_response(std::string_view line);

/// Serialises a response to one line (no trailing newline).
[[nodiscard]] std::string encode_response(const Response& response);

/// Converts a request to the job the simulation backend runs. `job_id` is
/// the engine-assigned internal id (client ids are 64-bit and may collide
/// across connections; the engine keeps its own dense sequence).
[[nodiscard]] workload::Job to_job(const Request& request,
                                   workload::JobId job_id,
                                   double submit_time);

/// Converts a workload job to a request (the load generator maps a seeded
/// trace straight onto the wire).
[[nodiscard]] Request from_job(const workload::Job& job, std::uint64_t id);

/// Element hash of one admission decision (id, status, price — plus the
/// tenant when attributed) for the order-independent session digest
/// (verify::UnorderedDigest). Server and load generator share this
/// encoding, so their digests are comparable: equal digests attest
/// identical decisions for the same request ids. The shard hint is
/// deliberately excluded: the merged digest must not depend on how
/// requests were partitioned across engines.
[[nodiscard]] std::uint64_t decision_hash(const Response& response);

/// The key the sharded router (and the per-key isolated engine state)
/// partitions on: the tenant when attributed, else a stable hash of the
/// scenario string, else 0 (the shared default state). Deterministic
/// across processes and platforms.
[[nodiscard]] std::uint64_t routing_key(const Request& request);

}  // namespace utilrisk::serve
