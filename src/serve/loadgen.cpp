#include "serve/loadgen.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "verify/digest.hpp"
#include "workload/qos.hpp"
#include "workload/workload.hpp"

namespace utilrisk::serve {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_between(Clock::time_point from,
                                     Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Blocking NDJSON client socket: line-framed send/receive with an idle
/// timeout on reads. Reads and writes may come from different threads
/// (sockets are full duplex); each side is single-threaded.
class LineSocket {
 public:
  ~LineSocket() {
    if (fd_ >= 0) ::close(fd_);
  }

  void connect_unix(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("unix socket path too long: " + path);
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0 || ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                             sizeof(addr)) != 0) {
      throw std::runtime_error("loadgen: cannot connect to " + path + ": " +
                               std::strerror(errno));
    }
  }

  void connect_tcp(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (fd_ < 0 || ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                             sizeof(addr)) != 0) {
      throw std::runtime_error("loadgen: cannot connect to port " +
                               std::to_string(port) + ": " +
                               std::strerror(errno));
    }
  }

  [[nodiscard]] bool send_line(const std::string& line) {
    std::string framed = line;
    framed.push_back('\n');
    std::size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + sent,
                               framed.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Next line, or nullopt on EOF / idle timeout / error.
  [[nodiscard]] std::optional<std::string> read_line(double timeout_seconds) {
    for (;;) {
      if (const auto nl = buffer_.find('\n'); nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      pollfd pfd{fd_, POLLIN, 0};
      const int ready =
          ::poll(&pfd, 1, static_cast<int>(timeout_seconds * 1000.0));
      if (ready <= 0) return std::nullopt;  // timeout or error
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n == 0) return std::nullopt;  // EOF
      if (n < 0) {
        if (errno == EINTR) continue;
        return std::nullopt;
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

void connect_per_config(LineSocket& socket, const LoadgenConfig& config) {
  if (!config.unix_path.empty()) {
    socket.connect_unix(config.unix_path);
  } else if (config.tcp_port >= 0) {
    socket.connect_tcp(config.tcp_port);
  } else {
    throw std::runtime_error(
        "loadgen: configure a unix socket path or a TCP port");
  }
}

/// Applies one received response to the running report tally.
void tally(LoadgenReport& report, verify::UnorderedDigest& digest,
           const Response& response) {
  ++report.responses;
  switch (response.status) {
    case Status::Accepted:
      ++report.accepted;
      digest.add(decision_hash(response));
      break;
    case Status::Rejected:
      ++report.rejected;
      digest.add(decision_hash(response));
      break;
    case Status::Busy:
      ++report.busy;
      break;
    case Status::Error:
      ++report.errors;
      break;
  }
}

}  // namespace

std::vector<Request> make_request_stream(const LoadgenConfig& config) {
  workload::SyntheticSdscConfig trace;
  trace.job_count = static_cast<std::uint32_t>(config.requests);
  trace.seed = config.seed;
  const workload::WorkloadBuilder builder(trace);
  workload::QosConfig qos;
  qos.high_urgency_percent = config.high_urgency_percent;
  // Decouple the QoS stream from the trace stream the same way the
  // experiment harness does: related but distinct seeds.
  qos.seed = config.seed * 9176 + 4242;
  const std::vector<workload::Job> jobs = builder.build(
      qos, config.arrival_delay_factor, config.inaccuracy_percent);

  std::vector<Request> requests;
  requests.reserve(jobs.size());
  std::uint64_t id = 1;
  for (const workload::Job& job : jobs) {
    requests.push_back(from_job(job, id++));
  }
  return requests;
}

LatencySummary summarize_latencies(std::vector<double> ms) {
  LatencySummary summary;
  if (ms.empty()) return summary;
  std::sort(ms.begin(), ms.end());
  const auto at_quantile = [&ms](double q) {
    const auto index = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(ms.size())));
    return ms[std::min(index == 0 ? 0 : index - 1, ms.size() - 1)];
  };
  summary.p50_ms = at_quantile(0.50);
  summary.p95_ms = at_quantile(0.95);
  summary.p99_ms = at_quantile(0.99);
  summary.max_ms = ms.back();
  double total = 0.0;
  for (double value : ms) total += value;
  summary.mean_ms = total / static_cast<double>(ms.size());
  return summary;
}

LoadgenReport run_loadgen(const LoadgenConfig& config) {
  const std::vector<Request> requests = make_request_stream(config);
  LineSocket socket;
  connect_per_config(socket, config);

  LoadgenReport report;
  verify::UnorderedDigest digest;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(requests.size());
  const auto wall_start = Clock::now();

  if (!config.open_loop) {
    // Closed loop: one in flight. The server answers in submission
    // order, so each send pairs with the next matching-id line.
    for (const Request& request : requests) {
      const auto sent_at = Clock::now();
      if (!socket.send_line(encode_request(request))) {
        report.dropped += 1;
        break;
      }
      ++report.sent;
      bool answered = false;
      while (!answered) {
        const auto line = socket.read_line(config.idle_timeout_seconds);
        if (!line.has_value()) break;  // timeout / EOF: give up on this id
        const Response response = parse_response(*line);
        tally(report, digest, response);
        if (response.id == request.id || response.status == Status::Busy ||
            response.status == Status::Error) {
          answered = true;
          latencies_ms.push_back(seconds_between(sent_at, Clock::now()) *
                                 1000.0);
        }
      }
      if (!answered) {
        ++report.dropped;
        break;  // the connection is wedged; stop instead of piling on
      }
    }
  } else {
    // Open loop: paced sends regardless of responses. A reader thread
    // tallies decisions/busy concurrently; `pending` maps in-flight ids
    // to their send instants for the latency percentiles. Every request
    // draws exactly one response (decision or busy) with its own id, so
    // the reader is done when the sender finished and `pending` drained —
    // or the server has gone silent past the idle timeout.
    std::mutex mutex;
    std::unordered_map<std::uint64_t, Clock::time_point> pending;
    std::atomic<bool> sender_done{false};

    std::thread reader([&] {
      auto last_activity = Clock::now();
      for (;;) {
        {
          std::lock_guard lock(mutex);
          if (sender_done.load() && pending.empty()) break;
        }
        const auto line = socket.read_line(/*timeout_seconds=*/0.1);
        if (!line.has_value()) {
          if (seconds_between(last_activity, Clock::now()) >
              config.idle_timeout_seconds) {
            break;
          }
          continue;
        }
        last_activity = Clock::now();
        const Response response = parse_response(*line);
        std::lock_guard lock(mutex);
        tally(report, digest, response);
        if (const auto it = pending.find(response.id);
            it != pending.end()) {
          latencies_ms.push_back(seconds_between(it->second, Clock::now()) *
                                 1000.0);
          pending.erase(it);
        }
      }
    });

    const double interval = config.rate > 0.0 ? 1.0 / config.rate : 0.0;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const auto due =
          wall_start + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               interval * static_cast<double>(i)));
      std::this_thread::sleep_until(due);
      {
        std::lock_guard lock(mutex);
        pending.emplace(requests[i].id, Clock::now());
      }
      if (!socket.send_line(encode_request(requests[i]))) {
        std::lock_guard lock(mutex);
        pending.erase(requests[i].id);
        ++report.dropped;
        continue;
      }
      ++report.sent;
    }
    sender_done.store(true);
    reader.join();
    std::lock_guard lock(mutex);
    report.dropped += pending.size();  // ids that never drew a response
  }

  report.wall_seconds = seconds_between(wall_start, Clock::now());
  report.throughput_rps =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.responses) / report.wall_seconds
          : 0.0;
  report.latency = summarize_latencies(std::move(latencies_ms));
  report.decision_digest = verify::to_hex(digest.value());
  return report;
}

}  // namespace utilrisk::serve
