#include "serve/loadgen.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <iterator>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <unordered_map>

#include "serve/shard.hpp"
#include "verify/digest.hpp"
#include "workload/generator.hpp"
#include "workload/qos.hpp"
#include "workload/workload.hpp"

namespace utilrisk::serve {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_between(Clock::time_point from,
                                     Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Blocking NDJSON client socket: line-framed send/receive with an idle
/// timeout on reads. Reads and writes may come from different threads
/// (sockets are full duplex); each side is single-threaded.
class LineSocket {
 public:
  ~LineSocket() {
    if (fd_ >= 0) ::close(fd_);
  }

  void connect_unix(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("unix socket path too long: " + path);
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0 || ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                             sizeof(addr)) != 0) {
      throw std::runtime_error("loadgen: cannot connect to " + path + ": " +
                               std::strerror(errno));
    }
  }

  void connect_tcp(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (fd_ < 0 || ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                             sizeof(addr)) != 0) {
      throw std::runtime_error("loadgen: cannot connect to port " +
                               std::to_string(port) + ": " +
                               std::strerror(errno));
    }
  }

  [[nodiscard]] bool send_line(const std::string& line) {
    std::string framed = line;
    framed.push_back('\n');
    std::size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + sent,
                               framed.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// One read attempt's outcome. Timeout, EOF and socket error are
  /// different failures (idle server vs closed connection vs broken
  /// transport) and the report counts them separately.
  struct ReadResult {
    enum class Kind { Line, Timeout, Eof, Error } kind = Kind::Timeout;
    std::string line;  // Kind::Line only
  };

  /// Next line, or the reason there is none.
  [[nodiscard]] ReadResult read_line(double timeout_seconds) {
    for (;;) {
      if (const auto nl = buffer_.find('\n'); nl != std::string::npos) {
        ReadResult result;
        result.kind = ReadResult::Kind::Line;
        result.line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return result;
      }
      pollfd pfd{fd_, POLLIN, 0};
      const int ready =
          ::poll(&pfd, 1, static_cast<int>(timeout_seconds * 1000.0));
      if (ready == 0) return {ReadResult::Kind::Timeout, {}};
      if (ready < 0) {
        if (errno == EINTR) continue;
        return {ReadResult::Kind::Error, {}};
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n == 0) return {ReadResult::Kind::Eof, {}};
      if (n < 0) {
        if (errno == EINTR) continue;
        return {ReadResult::Kind::Error, {}};
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// Raw byte send without line framing — the chaos harness uses this to
  /// tear frames mid-byte. Best effort; false when the peer is gone.
  [[nodiscard]] bool send_raw(std::string_view bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

void connect_per_config(LineSocket& socket, const LoadgenConfig& config) {
  if (!config.unix_path.empty()) {
    socket.connect_unix(config.unix_path);
  } else if (config.tcp_port >= 0) {
    socket.connect_tcp(config.tcp_port);
  } else {
    throw std::runtime_error(
        "loadgen: configure a unix socket path or a TCP port");
  }
}

/// Applies one received response to the running report tally.
void tally(LoadgenReport& report, verify::UnorderedDigest& digest,
           const Response& response) {
  ++report.responses;
  switch (response.status) {
    case Status::Accepted:
      ++report.accepted;
      digest.add(decision_hash(response));
      break;
    case Status::Rejected:
      ++report.rejected;
      digest.add(decision_hash(response));
      break;
    case Status::Busy:
      ++report.busy;
      break;
    case Status::Shed:
      ++report.shed;
      break;
    case Status::Error:
      ++report.errors;
      break;
    case Status::Advice:
      // Advisor answers are read-only queries, never admission decisions;
      // they carry no digest contribution (docs/ADVISOR.md).
      break;
  }
}

/// Builds the outer `mixshift` registry spec for `--mix-shift T:SPEC`:
/// the configured --workload (or the default SDSC trace, full fidelity)
/// becomes phase a, SPEC becomes phase b, T the switch time.
workload::GeneratorSpec mix_shift_spec(
    const LoadgenConfig& config,
    const workload::SyntheticSdscConfig& trace) {
  const auto colon = config.mix_shift.find(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= config.mix_shift.size()) {
    throw std::invalid_argument(
        "--mix-shift expects T:SPEC (e.g. 21600:zipf:theta=0.5), got '" +
        config.mix_shift + "'");
  }
  const workload::GeneratorSpec phase_a =
      workload::GeneratorSpec::parse(config.workload.empty()
                                         ? workload::spec_for(trace)
                                         : config.workload);
  const workload::GeneratorSpec phase_b =
      workload::GeneratorSpec::parse(config.mix_shift.substr(colon + 1));
  workload::GeneratorSpec outer;
  outer.method = "mixshift";
  outer.params.emplace_back("t", config.mix_shift.substr(0, colon));
  outer.params.emplace_back("a", phase_a.method);
  for (const auto& [key, value] : phase_a.params) {
    outer.params.emplace_back("a." + key, value);
  }
  outer.params.emplace_back("b", phase_b.method);
  for (const auto& [key, value] : phase_b.params) {
    outer.params.emplace_back("b." + key, value);
  }
  return outer;
}

/// Books a failed read under its cause.
void count_read_failure(LoadgenReport& report,
                        LineSocket::ReadResult::Kind kind) {
  switch (kind) {
    case LineSocket::ReadResult::Kind::Timeout: ++report.read_timeouts; break;
    case LineSocket::ReadResult::Kind::Eof: ++report.read_eofs; break;
    case LineSocket::ReadResult::Kind::Error: ++report.read_errors; break;
    case LineSocket::ReadResult::Kind::Line: break;  // not a failure
  }
}

}  // namespace

std::vector<Request> make_request_stream(const LoadgenConfig& config) {
  workload::SyntheticSdscConfig trace;
  trace.job_count = static_cast<std::uint32_t>(config.requests);
  trace.seed = config.seed;
  const workload::WorkloadBuilder builder = [&config, &trace] {
    if (config.mix_shift.empty() && config.workload.empty()) {
      return workload::WorkloadBuilder(trace);
    }
    workload::GeneratorSpec spec =
        config.mix_shift.empty()
            ? workload::GeneratorSpec::parse(config.workload)
            : mix_shift_spec(config, trace);
    spec.set_default("jobs", std::to_string(trace.job_count));
    spec.set_default("seed", std::to_string(trace.seed));
    return workload::WorkloadBuilder(workload::generate_jobs(spec));
  }();
  workload::QosConfig qos;
  qos.high_urgency_percent = config.high_urgency_percent;
  // Decouple the QoS stream from the trace stream the same way the
  // experiment harness does: related but distinct seeds.
  qos.seed = config.seed * 9176 + 4242;
  const std::vector<workload::Job> jobs = builder.build(
      qos, config.arrival_delay_factor, config.inaccuracy_percent);

  std::vector<Request> requests;
  requests.reserve(jobs.size());
  std::uint64_t id = 1;
  for (const workload::Job& job : jobs) {
    Request request = from_job(job, id++);
    // A wall-clock decision budget, when configured. Sheds never enter
    // the decision digest, so this does not perturb determinism checks.
    request.deadline_ms = config.deadline_ms;
    requests.push_back(std::move(request));
  }
  return requests;
}

LatencySummary summarize_latencies(std::vector<double> ms) {
  LatencySummary summary;
  if (ms.empty()) return summary;
  std::sort(ms.begin(), ms.end());
  const auto at_quantile = [&ms](double q) {
    const auto index = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(ms.size())));
    return ms[std::min(index == 0 ? 0 : index - 1, ms.size() - 1)];
  };
  summary.p50_ms = at_quantile(0.50);
  summary.p95_ms = at_quantile(0.95);
  summary.p99_ms = at_quantile(0.99);
  summary.max_ms = ms.back();
  double total = 0.0;
  for (double value : ms) total += value;
  summary.mean_ms = total / static_cast<double>(ms.size());
  return summary;
}

namespace {

/// One connection's client session over `requests`, tallying into the
/// caller's report/digest/latency accumulators. The fan-out path runs one
/// of these per connection and merges afterwards.
void run_session(const LoadgenConfig& config,
                 const std::vector<Request>& requests, double open_rate,
                 LoadgenReport& report, verify::UnorderedDigest& digest,
                 std::vector<double>& latencies_ms) {
  LineSocket socket;
  connect_per_config(socket, config);
  latencies_ms.reserve(latencies_ms.size() + requests.size());
  const auto wall_start = Clock::now();

  if (!config.open_loop) {
    // Closed loop: one in flight. The server answers in submission
    // order, so each send pairs with the next matching-id line. A `busy`
    // answer is retried up to busy_retries times, backing off by the
    // server's retry_after_ms hint when it sent one (the whole point of
    // the hint) and by the client-side retry_interval_ms fallback
    // otherwise; only an exhausted retry budget books the busy as final.
    for (const Request& request : requests) {
      const auto sent_at = Clock::now();
      if (!socket.send_line(encode_request(request))) {
        report.dropped += 1;
        break;
      }
      ++report.sent;
      std::size_t retries = 0;
      bool answered = false;
      bool wedged = false;
      while (!answered && !wedged) {
        const auto read = socket.read_line(config.idle_timeout_seconds);
        if (read.kind != LineSocket::ReadResult::Kind::Line) {
          count_read_failure(report, read.kind);  // give up on this id
          break;
        }
        const Response response = parse_response(read.line);
        tally(report, digest, response);
        if (response.status == Status::Busy && response.id == request.id &&
            retries < config.busy_retries) {
          ++retries;
          ++report.busy_retried;
          double backoff_ms = config.retry_interval_ms;
          if (response.retry_after_ms > 0.0) {
            backoff_ms = response.retry_after_ms;
            ++report.hinted_retries;
          }
          if (backoff_ms > 0.0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(backoff_ms));
          }
          if (!socket.send_line(encode_request(request))) wedged = true;
          continue;
        }
        if (response.id == request.id || response.status == Status::Busy ||
            response.status == Status::Error) {
          answered = true;
          latencies_ms.push_back(seconds_between(sent_at, Clock::now()) *
                                 1000.0);
        }
      }
      if (!answered) {
        ++report.dropped;
        break;  // the connection is wedged; stop instead of piling on
      }
    }
  } else {
    // Open loop: paced sends regardless of responses. A reader thread
    // tallies decisions/busy concurrently; `pending` maps in-flight ids
    // to their send instants for the latency percentiles. Every request
    // draws exactly one response (decision or busy) with its own id, so
    // the reader is done when the sender finished and `pending` drained —
    // or the server has gone silent past the idle timeout.
    std::mutex mutex;
    std::unordered_map<std::uint64_t, Clock::time_point> pending;
    std::atomic<bool> sender_done{false};

    std::thread reader([&] {
      auto last_activity = Clock::now();
      for (;;) {
        {
          std::lock_guard lock(mutex);
          if (sender_done.load() && pending.empty()) break;
        }
        const auto read = socket.read_line(/*timeout_seconds=*/0.1);
        if (read.kind == LineSocket::ReadResult::Kind::Eof ||
            read.kind == LineSocket::ReadResult::Kind::Error) {
          // The connection is gone; nothing more will arrive — no point
          // spinning out the idle timeout.
          std::lock_guard lock(mutex);
          count_read_failure(report, read.kind);
          break;
        }
        if (read.kind == LineSocket::ReadResult::Kind::Timeout) {
          if (seconds_between(last_activity, Clock::now()) >
              config.idle_timeout_seconds) {
            std::lock_guard lock(mutex);
            count_read_failure(report, read.kind);
            break;
          }
          continue;
        }
        last_activity = Clock::now();
        const Response response = parse_response(read.line);
        std::lock_guard lock(mutex);
        tally(report, digest, response);
        if (const auto it = pending.find(response.id);
            it != pending.end()) {
          latencies_ms.push_back(seconds_between(it->second, Clock::now()) *
                                 1000.0);
          pending.erase(it);
        }
      }
    });

    const double interval = open_rate > 0.0 ? 1.0 / open_rate : 0.0;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const auto due =
          wall_start + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               interval * static_cast<double>(i)));
      std::this_thread::sleep_until(due);
      {
        std::lock_guard lock(mutex);
        pending.emplace(requests[i].id, Clock::now());
      }
      if (!socket.send_line(encode_request(requests[i]))) {
        std::lock_guard lock(mutex);
        pending.erase(requests[i].id);
        ++report.dropped;
        continue;
      }
      ++report.sent;
    }
    sender_done.store(true);
    reader.join();
    std::lock_guard lock(mutex);
    report.dropped += pending.size();  // ids that never drew a response
  }

  report.wall_seconds = seconds_between(wall_start, Clock::now());
}

}  // namespace

LoadgenReport run_loadgen(const LoadgenConfig& config) {
  const std::vector<Request> requests = make_request_stream(config);
  const std::size_t fanout = std::max<std::size_t>(1, config.connections);

  LoadgenReport report;
  verify::UnorderedDigest digest;
  std::vector<double> latencies_ms;
  const auto wall_start = Clock::now();

  if (fanout == 1) {
    run_session(config, requests, config.rate, report, digest, latencies_ms);
  } else {
    // Partition by routing key with the same consistent hash the sharded
    // server routes by: each tenant's subsequence stays in order on one
    // connection, so per-tenant decisions — and with them the merged
    // order-independent digest — are identical to a single-connection
    // replay of the same stream.
    ShardRouter router(fanout);
    std::vector<std::vector<Request>> partitions(fanout);
    for (const Request& request : requests) {
      partitions[router.shard_for(routing_key(request))].push_back(request);
    }
    std::vector<LoadgenReport> reports(fanout);
    std::vector<verify::UnorderedDigest> digests(fanout);
    std::vector<std::vector<double>> latencies(fanout);
    std::vector<std::string> failures(fanout);
    const double per_connection_rate =
        config.rate / static_cast<double>(fanout);
    std::vector<std::thread> clients;
    clients.reserve(fanout);
    for (std::size_t i = 0; i < fanout; ++i) {
      clients.emplace_back([&, i] {
        try {
          run_session(config, partitions[i], per_connection_rate, reports[i],
                      digests[i], latencies[i]);
        } catch (const std::exception& e) {
          failures[i] = e.what();
        }
      });
    }
    for (std::thread& client : clients) client.join();
    for (const std::string& failure : failures) {
      if (!failure.empty()) throw std::runtime_error(failure);
    }
    for (std::size_t i = 0; i < fanout; ++i) {
      const LoadgenReport& part = reports[i];
      report.sent += part.sent;
      report.responses += part.responses;
      report.accepted += part.accepted;
      report.rejected += part.rejected;
      report.busy += part.busy;
      report.busy_retried += part.busy_retried;
      report.hinted_retries += part.hinted_retries;
      report.shed += part.shed;
      report.errors += part.errors;
      report.dropped += part.dropped;
      report.read_timeouts += part.read_timeouts;
      report.read_eofs += part.read_eofs;
      report.read_errors += part.read_errors;
      digest.merge(digests[i]);
      latencies_ms.insert(latencies_ms.end(), latencies[i].begin(),
                          latencies[i].end());
    }
  }

  report.wall_seconds = seconds_between(wall_start, Clock::now());
  report.throughput_rps =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.responses) / report.wall_seconds
          : 0.0;
  report.latency = summarize_latencies(std::move(latencies_ms));
  report.decision_digest = verify::to_hex(digest.value());
  return report;
}

namespace {

/// SplitMix64: the chaos schedule must be reproducible from the seed.
class ChaosRng {
 public:
  explicit ChaosRng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    state_ += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound).
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

 private:
  std::uint64_t state_;
};

/// Drains whatever the server answered with, briefly, counting structured
/// error responses. Unparseable response lines are ignored — the chaos
/// client judges survival, not wire perfection, and a killed connection
/// can tear a response line mid-byte.
void drain_responses(LineSocket& socket, ChaosReport& report,
                     double timeout_seconds) {
  for (;;) {
    const auto read = socket.read_line(timeout_seconds);
    if (read.kind != LineSocket::ReadResult::Kind::Line) return;
    ++report.responses;
    try {
      if (parse_response(read.line).status == Status::Error) {
        ++report.errors_reported;
      }
    } catch (const ProtocolError&) {
    }
  }
}

}  // namespace

ChaosReport run_chaos(const LoadgenConfig& config) {
  ChaosReport report;
  ChaosRng rng(config.seed * 0x9E3779B9ull + 7);
  // A small pool of valid requests to tear apart.
  LoadgenConfig stream_config = config;
  stream_config.requests = std::min<std::size_t>(config.requests, 64);
  const std::vector<Request> pool = make_request_stream(stream_config);

  const char* malformed[] = {
      "{\"type\":\"submit\"",                    // truncated JSON
      "not json at all",                          // not JSON
      "{\"type\":\"submit\",\"id\":\"seven\"}",  // wrong types
      "{\"type\":\"nonsense\",\"id\":1}",        // unknown type
      "{\"type\":\"submit\",\"id\":1,\"procs\":-3,\"runtime\":1,"
      "\"deadline\":1,\"budget\":1}",             // invalid values
      "\xff\xfe{\"type\":\"submit\"}",          // invalid UTF-8
      "{\"a\":\xc3\x28}",                        // overlong-ish broken UTF-8
  };

  const auto attack_start = Clock::now();
  for (std::size_t i = 0; i < config.chaos_connections; ++i) {
    if (seconds_between(attack_start, Clock::now()) >
        config.chaos_duration_seconds) {
      break;
    }
    LineSocket socket;
    try {
      connect_per_config(socket, config);
    } catch (const std::runtime_error&) {
      // Server gone entirely — the probe below will render the verdict.
      break;
    }
    ++report.connections;
    const Request& victim = pool[rng.below(pool.size())];
    const std::string frame = encode_request(victim);
    switch (rng.below(5)) {
      case 0: {
        // Mid-request disconnect: half a frame, no newline, vanish.
        (void)socket.send_raw(
            std::string_view(frame).substr(0, frame.size() / 2));
        ++report.disconnects;
        break;  // ~LineSocket closes abruptly
      }
      case 1: {
        // Torn write: drip a prefix byte by byte, then abandon it.
        const std::size_t cut = 1 + rng.below(frame.size() - 1);
        for (std::size_t b = 0; b < cut; ++b) {
          if (!socket.send_raw(std::string_view(frame).substr(b, 1))) break;
        }
        ++report.torn_writes;
        break;
      }
      case 2: {
        // Malformed frames — the server must answer each with a
        // structured error, never by dying.
        const std::size_t count = 1 + rng.below(3);
        for (std::size_t k = 0; k < count; ++k) {
          std::string line(malformed[rng.below(std::size(malformed))]);
          line.push_back('\n');
          if (!socket.send_raw(line)) break;
          ++report.malformed_sent;
        }
        // Deeply nested JSON (the parser's recursion guard).
        std::string deep(200, '[');
        deep += std::string(200, ']');
        deep.push_back('\n');
        if (socket.send_raw(deep)) ++report.malformed_sent;
        drain_responses(socket, report, /*timeout_seconds=*/0.2);
        break;
      }
      case 3: {
        // Oversized frame: blow past kMaxRequestBytes on one line.
        std::string huge = "{\"pad\":\"";
        huge.append(kMaxRequestBytes + 1024, 'x');
        huge += "\"}\n";
        if (socket.send_raw(huge)) ++report.oversized_sent;
        drain_responses(socket, report, /*timeout_seconds=*/0.2);
        break;
      }
      case 4: {
        // Slow-loris: a few bytes, a pause, a few more — never a full
        // frame. The server's stall/poll machinery must shrug it off.
        std::size_t offset = 0;
        for (int burst = 0; burst < 3 && offset < frame.size(); ++burst) {
          const std::size_t take = std::min<std::size_t>(
              1 + rng.below(3), frame.size() - offset);
          if (!socket.send_raw(
                  std::string_view(frame).substr(offset, take))) {
            break;
          }
          offset += take;
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
        ++report.slow_loris;
        break;
      }
      default: break;
    }
  }

  // The verdict: a clean seeded closed-loop stream right through the
  // wreckage. Every request answered, nothing dropped = the server
  // neither crashed, hung, nor wedged its connections.
  LoadgenConfig probe_config = config;
  probe_config.open_loop = false;
  probe_config.requests = std::min<std::size_t>(config.requests, 500);
  probe_config.deadline_ms = 0.0;  // the probe must not shed
  report.probe = run_loadgen(probe_config);
  report.probe_clean =
      report.probe.dropped == 0 &&
      report.probe.responses >= report.probe.sent &&
      report.probe.sent == probe_config.requests;
  return report;
}

}  // namespace utilrisk::serve
