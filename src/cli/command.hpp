// Subcommand registry for the utilrisk CLI.
//
// Each subcommand declares its ArgParser options, help summary and handler
// in one Command table entry; the registry owns the shared machinery that
// used to be copy-pasted per subcommand in tools/utilrisk_cli.cpp:
//
//  - the shared flags --log-level, --manifest-dir and --workers are
//    declared once (in add_shared_options) instead of per command;
//  - every invocation of a manifest-emitting command (simulate, sweep,
//    advise) gets an enabled MetricsRegistry and a RunManifest pre-filled
//    with command/argv/git-describe/start-time/effective-config, and the
//    registry writes the manifest (with a final metric snapshot and the
//    wall time) after the handler returns;
//  - dispatch, global usage, --help and error reporting live in run().
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cli/args.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "sim/logger.hpp"

namespace utilrisk::cli {

/// Everything a subcommand handler receives.
struct CommandContext {
  const ArgParser& args;
  /// Enabled registry for this invocation; its snapshot lands in the
  /// manifest after the handler returns.
  obs::MetricsRegistry& metrics;
  /// Pre-filled manifest; handlers append their seeds and result stats.
  obs::RunManifest& manifest;
  /// Resolved --workers (only for commands declared with uses_workers).
  std::size_t workers = 0;
  /// Resolved --log-level.
  sim::LogLevel log_level = sim::LogLevel::Off;
};

/// One subcommand: declaration + behaviour in a single table entry.
struct Command {
  std::string name;
  std::string summary;
  /// Declares the command-specific options on the parser (the registry
  /// appends the shared ones afterwards).
  std::function<void(ArgParser&)> declare;
  std::function<int(CommandContext&)> handler;
  /// Declare the shared --workers option (parallel fan-out commands).
  bool uses_workers = false;
  /// Emit a run manifest (--manifest-dir; empty value disables).
  bool emits_manifest = false;
};

class CommandRegistry {
 public:
  /// `program` and `description` feed the global usage text.
  CommandRegistry(std::string program, std::string description);

  /// Registers a subcommand (order = usage listing order).
  void add(Command command);

  [[nodiscard]] const Command* find(const std::string& name) const;
  [[nodiscard]] const std::vector<Command>& commands() const {
    return commands_;
  }

  /// Global usage text listing every registered subcommand.
  [[nodiscard]] std::string usage() const;

  /// Full dispatch: parses argv, builds the command's parser (specific +
  /// shared options), handles --help/unknown-command/errors, runs the
  /// handler and writes the manifest. Returns the process exit code.
  int run(int argc, char** argv) const;

 private:
  int run_command(const Command& command,
                  const std::vector<std::string>& args) const;

  std::string program_;
  std::string description_;
  std::vector<Command> commands_;
};

/// Declares the cross-command options. Called by the registry after the
/// command's own declare(); exposed for tests.
void add_shared_options(ArgParser& parser, const Command& command);

}  // namespace utilrisk::cli
