#include "cli/args.hpp"

#include <algorithm>
#include <charconv>
#include <sstream>

namespace utilrisk::cli {

ArgParser::ArgParser(std::string command, std::string summary)
    : command_(std::move(command)), summary_(std::move(summary)) {}

ArgParser& ArgParser::option(const std::string& name,
                             const std::string& value_name,
                             const std::string& help,
                             const std::string& default_value,
                             bool required) {
  if (value_name.empty()) {
    throw std::logic_error("ArgParser::option: empty value name (use flag)");
  }
  options_.push_back({name, value_name, help, default_value, required});
  return *this;
}

ArgParser& ArgParser::flag(const std::string& name, const std::string& help) {
  options_.push_back({name, "", help, "", false});
  return *this;
}

ArgParser& ArgParser::positional(const std::string& name,
                                 const std::string& help, bool required) {
  positionals_.push_back({name, "", help, "", required});
  return *this;
}

const OptionSpec* ArgParser::find_spec(const std::string& name) const {
  for (const OptionSpec& spec : options_) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

void ArgParser::parse(const std::vector<std::string>& args) {
  parsed_ = true;
  std::size_t next_positional = 0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return;
    }
    if (arg.rfind("--", 0) == 0) {
      std::string name = arg.substr(2);
      std::string inline_value;
      bool has_inline = false;
      if (const auto eq = name.find('='); eq != std::string::npos) {
        inline_value = name.substr(eq + 1);
        name = name.substr(0, eq);
        has_inline = true;
      }
      const OptionSpec* spec = find_spec(name);
      if (spec == nullptr) {
        throw ArgError("unknown option --" + name + "\n" + usage());
      }
      if (spec->value_name.empty()) {  // flag
        if (has_inline) {
          throw ArgError("flag --" + name + " takes no value");
        }
        flags_[name] = true;
        continue;
      }
      // Repeating a single-valued option is almost always a stale shell
      // history or a script bug; silently keeping the last value hid it.
      if (values_.contains(name)) {
        throw ArgError("option --" + name +
                       " given more than once (it takes a single value)");
      }
      if (has_inline) {
        values_[name] = inline_value;
        continue;
      }
      if (i + 1 >= args.size()) {
        throw ArgError("option --" + name + " needs a value\n" + usage());
      }
      values_[name] = args[++i];
      continue;
    }
    if (next_positional >= positionals_.size()) {
      throw ArgError("unexpected argument '" + arg + "'\n" + usage());
    }
    positional_values_[positionals_[next_positional].name] = arg;
    ++next_positional;
  }
  for (const OptionSpec& spec : options_) {
    if (spec.required && !values_.contains(spec.name)) {
      throw ArgError("missing required option --" + spec.name + "\n" +
                     usage());
    }
  }
  for (const OptionSpec& spec : positionals_) {
    if (spec.required && !positional_values_.contains(spec.name)) {
      throw ArgError("missing argument <" + spec.name + ">\n" + usage());
    }
  }
}

bool ArgParser::has(const std::string& name) const {
  return values_.contains(name);
}

std::string ArgParser::get(const std::string& name) const {
  if (const auto it = values_.find(name); it != values_.end()) {
    return it->second;
  }
  const OptionSpec* spec = find_spec(name);
  if (spec == nullptr) {
    throw std::logic_error("ArgParser::get: undeclared option " + name);
  }
  return spec->default_value;
}

double ArgParser::get_double(const std::string& name) const {
  const std::string text = get(name);
  double value = 0.0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw ArgError("option --" + name + ": '" + text + "' is not a number");
  }
  return value;
}

long ArgParser::get_int(const std::string& name) const {
  const std::string text = get(name);
  long value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw ArgError("option --" + name + ": '" + text +
                   "' is not an integer");
  }
  return value;
}

bool ArgParser::get_flag(const std::string& name) const {
  const auto it = flags_.find(name);
  return it != flags_.end() && it->second;
}

std::optional<std::string> ArgParser::positional_value(
    const std::string& name) const {
  if (const auto it = positional_values_.find(name);
      it != positional_values_.end()) {
    return it->second;
  }
  return std::nullopt;
}

std::string ArgParser::usage() const {
  std::ostringstream out;
  out << "usage: " << command_;
  for (const OptionSpec& spec : positionals_) {
    out << (spec.required ? " <" : " [") << spec.name
        << (spec.required ? ">" : "]");
  }
  if (!options_.empty()) out << " [options]";
  out << "\n  " << summary_ << '\n';
  for (const OptionSpec& spec : positionals_) {
    out << "  <" << spec.name << ">  " << spec.help << '\n';
  }
  for (const OptionSpec& spec : options_) {
    out << "  --" << spec.name;
    if (!spec.value_name.empty()) out << " <" << spec.value_name << ">";
    out << "  " << spec.help;
    if (!spec.default_value.empty()) {
      out << " (default: " << spec.default_value << ")";
    }
    if (spec.required) out << " [required]";
    out << '\n';
  }
  return out.str();
}

std::vector<std::pair<std::string, std::string>>
ArgParser::effective_options() const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(options_.size() + positionals_.size());
  for (const OptionSpec& spec : positionals_) {
    if (const auto it = positional_values_.find(spec.name);
        it != positional_values_.end()) {
      out.emplace_back(spec.name, it->second);
    }
  }
  for (const OptionSpec& spec : options_) {
    if (spec.value_name.empty()) {
      out.emplace_back(spec.name, get_flag(spec.name) ? "true" : "false");
    } else {
      out.emplace_back(spec.name, get(spec.name));
    }
  }
  return out;
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::string token;
  std::istringstream in(text);
  while (std::getline(in, token, ',')) {
    const auto first = token.find_first_not_of(" \t");
    const auto last = token.find_last_not_of(" \t");
    out.push_back(first == std::string::npos
                      ? std::string()
                      : token.substr(first, last - first + 1));
  }
  return out;
}

}  // namespace utilrisk::cli
