// Minimal declarative command-line parser for the utilrisk CLI tool.
//
// Supports `--flag`, `--option value`, `--option=value`, positional
// arguments, required/optional options with defaults, typed access with
// validation, and generated usage text. No external dependencies.
#pragma once

#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace utilrisk::cli {

/// Thrown for unknown options, missing values/required options, or failed
/// type conversions; the message is user-facing.
class ArgError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One declared option.
struct OptionSpec {
  std::string name;         ///< long name without the leading "--"
  std::string value_name;   ///< e.g. "N" in "--jobs N"; empty = boolean flag
  std::string help;
  std::string default_value;  ///< printed in help; used when absent
  bool required = false;
};

class ArgParser {
 public:
  /// `command` and `summary` feed the usage text.
  ArgParser(std::string command, std::string summary);

  /// Declares a value option. Returns *this for chaining.
  ArgParser& option(const std::string& name, const std::string& value_name,
                    const std::string& help,
                    const std::string& default_value = "",
                    bool required = false);

  /// Declares a boolean flag (present/absent).
  ArgParser& flag(const std::string& name, const std::string& help);

  /// Declares a positional argument (order of declaration).
  ArgParser& positional(const std::string& name, const std::string& help,
                        bool required = true);

  /// Parses argv (excluding the program/subcommand names). Throws ArgError
  /// on malformed input. Recognises `--help` and sets help_requested().
  void parse(const std::vector<std::string>& args);

  [[nodiscard]] bool help_requested() const { return help_requested_; }

  // --- typed access (after parse) --------------------------------------
  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] long get_int(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;
  [[nodiscard]] std::optional<std::string> positional_value(
      const std::string& name) const;

  /// Usage text for --help and error reporting.
  [[nodiscard]] std::string usage() const;

  /// Every declared option/flag/positional with the value this run
  /// actually used (parsed, or the default; flags as "true"/"false";
  /// absent optional positionals are skipped). Declaration order — feeds
  /// the `config` section of run manifests.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>>
  effective_options() const;

 private:
  const OptionSpec* find_spec(const std::string& name) const;

  std::string command_;
  std::string summary_;
  std::vector<OptionSpec> options_;
  std::vector<OptionSpec> positionals_;
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> flags_;
  std::map<std::string, std::string> positional_values_;
  bool help_requested_ = false;
  bool parsed_ = false;
};

/// Splits "a,b,c" into trimmed tokens (used for --weights).
[[nodiscard]] std::vector<std::string> split_csv(const std::string& text);

}  // namespace utilrisk::cli
