#include "cli/command.hpp"

#include <algorithm>
#include <chrono>
#include <iostream>
#include <sstream>
#include <utility>

#include "exp/parallel.hpp"

namespace utilrisk::cli {

CommandRegistry::CommandRegistry(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CommandRegistry::add(Command command) {
  commands_.push_back(std::move(command));
}

const Command* CommandRegistry::find(const std::string& name) const {
  for (const Command& command : commands_) {
    if (command.name == name) return &command;
  }
  return nullptr;
}

std::string CommandRegistry::usage() const {
  std::ostringstream out;
  out << program_ << " — " << description_ << "\n\nsubcommands:\n";
  std::size_t width = 0;
  for (const Command& command : commands_) {
    width = std::max(width, command.name.size());
  }
  for (const Command& command : commands_) {
    out << "  " << command.name
        << std::string(width - command.name.size() + 2, ' ')
        << command.summary << '\n';
  }
  out << "\nrun '" << program_ << " <subcommand> --help' for options.\n";
  return out.str();
}

void add_shared_options(ArgParser& parser, const Command& command) {
  parser.option("log-level", "L", "trace verbosity: off|error|info|debug",
                "off");
  if (command.uses_workers) {
    parser.option("workers", "N",
                  "worker threads (0 = auto: REPRO_JOBS_PAR, else hardware "
                  "concurrency)",
                  "0");
  }
  if (command.emits_manifest) {
    parser.option("manifest-dir", "DIR",
                  "write the JSON run manifest here (empty disables)", ".");
  }
}

int CommandRegistry::run_command(const Command& command,
                                 const std::vector<std::string>& args) const {
  ArgParser parser(program_ + " " + command.name, command.summary);
  if (command.declare) command.declare(parser);
  add_shared_options(parser, command);
  parser.parse(args);
  if (parser.help_requested()) {
    std::cout << parser.usage();
    return 0;
  }

  obs::MetricsRegistry metrics(/*enabled=*/true);
  obs::RunManifest manifest;
  manifest.command = command.name;
  manifest.argv = args;
  manifest.git_describe = obs::build_git_describe();
  manifest.started_at_utc = obs::utc_timestamp_now();
  manifest.config = parser.effective_options();

  CommandContext context{parser, metrics, manifest};
  context.log_level = sim::parse_log_level(parser.get("log-level"));
  if (command.uses_workers) {
    const long workers = parser.get_int("workers");
    if (workers < 0) throw ArgError("--workers must be >= 0");
    context.workers = workers == 0 ? exp::default_worker_count()
                                   : static_cast<std::size_t>(workers);
  }

  const auto start = std::chrono::steady_clock::now();
  const int status = command.handler(context);

  if (command.emits_manifest && !parser.get("manifest-dir").empty()) {
    manifest.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    manifest.metrics = metrics.snapshot();
    const std::string path =
        obs::write_manifest(manifest, parser.get("manifest-dir"));
    std::cout << "[manifest: " << path << "]\n";
  }
  return status;
}

int CommandRegistry::run(int argc, char** argv) const {
  if (argc < 2) {
    std::cout << usage();
    return 2;
  }
  std::string name = argv[1];
  if (name == "--help" || name == "-h" || name == "help") {
    std::cout << usage();
    return 0;
  }
  // `--version` aliases the `version` subcommand when one is registered.
  if (name == "--version" || name == "-V") name = "version";
  const Command* command = find(name);
  if (command == nullptr) {
    std::cerr << "unknown subcommand '" << name << "'\n";
    std::cout << usage();
    return 2;
  }
  const std::vector<std::string> args(argv + 2, argv + argc);
  try {
    return run_command(*command, args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}

}  // namespace utilrisk::cli
