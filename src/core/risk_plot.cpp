#include "core/risk_plot.hpp"

#include <cmath>

namespace utilrisk::core {

TrendLine fit_trend(const PolicySeries& series) {
  TrendLine trend;
  const auto& pts = series.points;
  if (pts.size() < 2) return trend;

  // Distinct-point check: identical points carry no trend (§4.3).
  bool any_distinct = false;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (!(pts[i] == pts[0])) {
      any_distinct = true;
      break;
    }
  }
  if (!any_distinct) return trend;

  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  const double n = static_cast<double>(pts.size());
  for (const RiskPoint& p : pts) {
    sx += p.volatility;
    sy += p.performance;
    sxx += p.volatility * p.volatility;
    sxy += p.volatility * p.performance;
  }
  const double denom = n * sxx - sx * sx;
  if (std::fabs(denom) < 1e-15) {
    // All points share one volatility: vertical spread has no
    // performance-over-volatility trend.
    return trend;
  }
  trend.valid = true;
  trend.slope = (n * sxy - sx * sy) / denom;
  trend.intercept = (sy - trend.slope * sx) / n;
  return trend;
}

const char* to_string(GradientClass gradient) {
  switch (gradient) {
    case GradientClass::Decreasing: return "decreasing";
    case GradientClass::Increasing: return "increasing";
    case GradientClass::Zero: return "zero";
    case GradientClass::NotAvailable: return "NA";
  }
  return "?";
}

GradientClass classify_gradient(const TrendLine& trend, double tolerance) {
  if (!trend.valid) return GradientClass::NotAvailable;
  if (std::fabs(trend.slope) <= tolerance) return GradientClass::Zero;
  return trend.slope < 0.0 ? GradientClass::Decreasing
                           : GradientClass::Increasing;
}

int gradient_rank(GradientClass gradient) {
  switch (gradient) {
    case GradientClass::NotAvailable: return 0;  // ideal constant policies
    case GradientClass::Decreasing: return 1;
    case GradientClass::Increasing: return 2;
    case GradientClass::Zero: return 3;
  }
  return 4;
}

}  // namespace utilrisk::core
