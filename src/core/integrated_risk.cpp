#include "core/integrated_risk.hpp"

#include <cmath>
#include <stdexcept>

namespace utilrisk::core {

RiskPoint integrated_risk(std::span<const RiskPoint> separate,
                          std::span<const double> weights) {
  if (separate.empty()) {
    throw std::invalid_argument("integrated_risk: no objectives");
  }
  if (separate.size() != weights.size()) {
    throw std::invalid_argument(
        "integrated_risk: weights/objectives size mismatch");
  }
  double weight_sum = 0.0;
  RiskPoint point;
  for (std::size_t i = 0; i < separate.size(); ++i) {
    const double w = weights[i];
    if (w < 0.0 || w > 1.0) {
      throw std::invalid_argument("integrated_risk: weight outside [0,1]");
    }
    weight_sum += w;
    point.performance += w * separate[i].performance;
    point.volatility += w * separate[i].volatility;
  }
  if (std::fabs(weight_sum - 1.0) > 1e-9) {
    throw std::invalid_argument("integrated_risk: weights must sum to 1");
  }
  return point;
}

std::vector<double> equal_weights(std::size_t n) {
  if (n == 0) {
    throw std::invalid_argument("equal_weights: n == 0");
  }
  return std::vector<double>(n, 1.0 / static_cast<double>(n));
}

}  // namespace utilrisk::core
