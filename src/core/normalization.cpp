#include "core/normalization.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace utilrisk::core {

const char* to_string(WaitNormalization strategy) {
  switch (strategy) {
    case WaitNormalization::MinMaxAcrossPolicies: return "minmax";
    case WaitNormalization::Reciprocal: return "reciprocal";
  }
  return "?";
}

double normalize_percentage(double percent) {
  if (!std::isfinite(percent)) {
    throw std::invalid_argument("normalize_percentage: non-finite value");
  }
  return std::clamp(percent / 100.0, 0.0, 1.0);
}

std::vector<std::vector<double>> normalize_objective(
    Objective objective, const std::vector<std::vector<double>>& raw,
    const NormalizationConfig& config) {
  if (raw.empty()) return {};
  const std::size_t values = raw.front().size();
  for (const auto& row : raw) {
    if (row.size() != values) {
      throw std::invalid_argument("normalize_objective: ragged matrix");
    }
  }

  std::vector<std::vector<double>> out(raw.size(),
                                       std::vector<double>(values, 0.0));

  if (higher_is_better(objective)) {
    for (std::size_t p = 0; p < raw.size(); ++p) {
      for (std::size_t v = 0; v < values; ++v) {
        out[p][v] = normalize_percentage(raw[p][v]);
      }
    }
    return out;
  }

  // Wait objective (lower is better).
  switch (config.wait) {
    case WaitNormalization::Reciprocal: {
      if (config.reciprocal_tau <= 0.0) {
        throw std::invalid_argument("normalize_objective: tau <= 0");
      }
      for (std::size_t p = 0; p < raw.size(); ++p) {
        for (std::size_t v = 0; v < values; ++v) {
          if (raw[p][v] < 0.0) {
            throw std::invalid_argument("normalize_objective: negative wait");
          }
          out[p][v] = 1.0 / (1.0 + raw[p][v] / config.reciprocal_tau);
        }
      }
      break;
    }
    case WaitNormalization::MinMaxAcrossPolicies: {
      for (std::size_t v = 0; v < values; ++v) {
        double lo = raw[0][v];
        double hi = raw[0][v];
        for (std::size_t p = 0; p < raw.size(); ++p) {
          if (raw[p][v] < 0.0) {
            throw std::invalid_argument("normalize_objective: negative wait");
          }
          lo = std::min(lo, raw[p][v]);
          hi = std::max(hi, raw[p][v]);
        }
        const double span = hi - lo;
        for (std::size_t p = 0; p < raw.size(); ++p) {
          out[p][v] = span > 0.0 ? (hi - raw[p][v]) / span : 1.0;
        }
      }
      break;
    }
  }
  return out;
}

}  // namespace utilrisk::core
