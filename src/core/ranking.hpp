// Policy ranking from a risk analysis plot (paper §4.3, Tables III-IV).
//
// Best-performance order compares, in sequence:
//   (i) maximum performance (higher better), (ii) minimum volatility
//   (lower better), (iii) performance difference (lower better),
//   (iv) volatility difference (lower better), (v) trend-line gradient
//   (decreasing before increasing before zero).
// Best-volatility order swaps the roles:
//   (i) minimum volatility, (ii) maximum performance, (iii) volatility
//   difference, (iv) performance difference, (v) gradient.
// A final concentration tie-break implements the paper's "most points near
// the maximum performance / minimum volatility corner" argument (policy C
// over policy D in Table III).
#pragma once

#include <string>
#include <vector>

#include "core/risk_plot.hpp"

namespace utilrisk::core {

/// Per-policy aggregates backing Tables II-IV.
struct PolicyRankStats {
  std::string policy;
  double max_performance = 0.0;
  double min_performance = 0.0;
  double max_volatility = 0.0;
  double min_volatility = 0.0;
  GradientClass gradient = GradientClass::NotAvailable;
  /// Fraction of points within `kConcentrationRadius` of the policy's own
  /// (min volatility, max performance) corner.
  double concentration = 0.0;

  [[nodiscard]] double performance_difference() const {
    return max_performance - min_performance;
  }
  [[nodiscard]] double volatility_difference() const {
    return max_volatility - min_volatility;
  }
};

inline constexpr double kConcentrationRadius = 0.1;

/// Computes Table II style aggregates for one policy's points.
[[nodiscard]] PolicyRankStats compute_rank_stats(const PolicySeries& series);

/// Ranking criterion.
enum class RankBy { BestPerformance, BestVolatility };

/// Ranks all series; returns stats sorted best-first. Value comparisons
/// use `tolerance` so near-equal aggregates fall through to later keys, as
/// in the paper's worked example.
[[nodiscard]] std::vector<PolicyRankStats> rank_policies(
    const std::vector<PolicySeries>& series, RankBy criterion,
    double tolerance = 1e-9);

}  // namespace utilrisk::core
