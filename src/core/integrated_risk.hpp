// Integrated risk analysis (paper §4.2, eqns 7-8): weighted combination of
// the separate risk of several objectives.
#pragma once

#include <span>
#include <vector>

#include "core/separate_risk.hpp"

namespace utilrisk::core {

/// mu_int = sum w_i * mu_sep,i ; sigma_int = sum w_i * sigma_sep,i with
/// 0 <= w_i <= 1 and sum w_i = 1 (within tolerance). Throws
/// std::invalid_argument on size mismatch or invalid weights.
[[nodiscard]] RiskPoint integrated_risk(std::span<const RiskPoint> separate,
                                        std::span<const double> weights);

/// Equal weights 1/n (the experiments weight all objectives equally:
/// 1/3 for three-objective combinations, 1/4 for all four).
[[nodiscard]] std::vector<double> equal_weights(std::size_t n);

}  // namespace utilrisk::core
