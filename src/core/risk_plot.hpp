// Risk analysis plots (paper §4.3, Fig. 1): per-policy scatter of
// (volatility, performance) points — one point per scenario — plus trend
// lines and gradient classification.
#pragma once

#include <string>
#include <vector>

#include "core/separate_risk.hpp"

namespace utilrisk::core {

/// One policy's points across all scenarios.
struct PolicySeries {
  std::string policy;
  /// Parallel to the scenario list of the plot.
  std::vector<RiskPoint> points;
};

struct RiskPlot {
  std::string title;
  std::vector<std::string> scenarios;  ///< labels, parallel to each series
  std::vector<PolicySeries> series;
};

/// Least-squares trend of performance (y) over volatility (x). `valid` is
/// false when a policy "does not have any or too few different points"
/// (§4.3) — fewer than two distinct points, or no volatility spread to
/// regress over.
struct TrendLine {
  bool valid = false;
  double slope = 0.0;
  double intercept = 0.0;
};

[[nodiscard]] TrendLine fit_trend(const PolicySeries& series);

/// Paper §4.3 gradient classes. Preference order for ranking:
/// Decreasing (lower volatility at higher performance) before Increasing
/// before Zero (volatility changes with no performance change);
/// NotAvailable marks the no-trend-line case.
enum class GradientClass {
  Decreasing,
  Increasing,
  Zero,
  NotAvailable,
};

[[nodiscard]] const char* to_string(GradientClass gradient);

/// Classifies a trend line; slopes within `tolerance` of 0 are Zero.
[[nodiscard]] GradientClass classify_gradient(const TrendLine& trend,
                                              double tolerance = 1e-3);

/// Numeric preference for ranking (lower = preferred).
[[nodiscard]] int gradient_rank(GradientClass gradient);

}  // namespace utilrisk::core
