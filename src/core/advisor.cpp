#include "core/advisor.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "core/integrated_risk.hpp"

namespace utilrisk::core {

void AdvisorInput::validate() const {
  if (policies.empty()) {
    throw std::invalid_argument("AdvisorInput: no policies");
  }
  if (points.size() != policies.size()) {
    throw std::invalid_argument("AdvisorInput: points/policies mismatch");
  }
  const std::size_t scenarios = points.front().size();
  if (scenarios == 0) {
    throw std::invalid_argument("AdvisorInput: no scenarios");
  }
  for (std::size_t p = 0; p < points.size(); ++p) {
    if (points[p].size() != scenarios) {
      throw std::invalid_argument("AdvisorInput: ragged scenario matrix");
    }
    for (const auto& per_objective : points[p]) {
      for (const RiskPoint& point : per_objective) {
        if (!std::isfinite(point.performance) ||
            !std::isfinite(point.volatility)) {
          throw std::invalid_argument("AdvisorInput: non-finite risk point "
                                      "for policy '" + policies[p] + "'");
        }
        if (point.volatility < 0.0) {
          throw std::invalid_argument("AdvisorInput: negative volatility "
                                      "for policy '" + policies[p] + "'");
        }
      }
    }
  }
}

void AdvisorConfig::validate() const {
  double weight_sum = 0.0;
  for (std::size_t o = 0; o < objective_weights.size(); ++o) {
    const double w = objective_weights[o];
    // NaN fails the range test (every comparison with NaN is false, so
    // the negated form catches it); infinities fail it outright.
    if (!(w >= 0.0 && w <= 1.0)) {
      throw std::invalid_argument(
          "advisor config: weight for " +
          std::string(to_string(kAllObjectives[o])) +
          " must be a finite number in [0,1]");
    }
    weight_sum += w;
  }
  if (std::fabs(weight_sum - 1.0) > 1e-9) {
    throw std::invalid_argument(
        "advisor config: weights must sum to 1 (got " +
        std::to_string(weight_sum) + "); not renormalizing");
  }
  if (!(risk_aversion >= 0.0) || !std::isfinite(risk_aversion)) {
    throw std::invalid_argument(
        "advisor config: risk aversion must be a finite number >= 0");
  }
}

std::array<double, 4> AdvisorConfig::parse_weights(std::string_view csv) {
  std::array<double, 4> weights{};
  std::size_t index = 0;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = csv.find(',', start);
    const std::string_view token = csv.substr(
        start, comma == std::string_view::npos ? std::string_view::npos
                                               : comma - start);
    if (index >= weights.size()) {
      throw std::invalid_argument(
          "advisor config: expected exactly 4 comma-separated weights");
    }
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || ptr != token.data() + token.size() ||
        token.empty()) {
      throw std::invalid_argument("advisor config: weight '" +
                                  std::string(token) + "' is not a number");
    }
    weights[index++] = value;
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  if (index != weights.size()) {
    throw std::invalid_argument(
        "advisor config: expected exactly 4 comma-separated weights");
  }
  return weights;
}

namespace {

/// Integrated series of one policy under the weights.
PolicySeries integrate_series(const AdvisorInput& input, std::size_t p,
                              const std::array<double, 4>& weights) {
  PolicySeries series;
  series.policy = input.policies[p];
  series.points.reserve(input.points[p].size());
  const std::vector<double> w(weights.begin(), weights.end());
  for (const auto& per_objective : input.points[p]) {
    const std::vector<RiskPoint> separate(per_objective.begin(),
                                          per_objective.end());
    series.points.push_back(integrated_risk(separate, w));
  }
  return series;
}

/// Single-objective series of one policy.
PolicySeries objective_series(const AdvisorInput& input, std::size_t p,
                              Objective objective) {
  PolicySeries series;
  series.policy = input.policies[p];
  for (const auto& per_objective : input.points[p]) {
    series.points.push_back(
        per_objective[static_cast<std::size_t>(objective)]);
  }
  return series;
}

}  // namespace

AdvisorReport advise(const AdvisorInput& input, const AdvisorConfig& config) {
  input.validate();
  config.validate();

  AdvisorReport report;
  report.ranked.reserve(input.policies.size());
  for (std::size_t p = 0; p < input.policies.size(); ++p) {
    const PolicySeries series =
        integrate_series(input, p, config.objective_weights);
    PolicyAdvice advice;
    advice.policy = input.policies[p];
    double perf = 0.0;
    double vol = 0.0;
    for (const RiskPoint& point : series.points) {
      perf += point.performance;
      vol += point.volatility;
    }
    const double n = static_cast<double>(series.points.size());
    advice.mean_performance = perf / n;
    advice.mean_volatility = vol / n;
    advice.score =
        advice.mean_performance - config.risk_aversion * advice.mean_volatility;
    advice.stats = compute_rank_stats(series);
    report.ranked.push_back(std::move(advice));
  }
  std::sort(report.ranked.begin(), report.ranked.end(),
            [](const PolicyAdvice& a, const PolicyAdvice& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.mean_volatility != b.mean_volatility) {
                return a.mean_volatility < b.mean_volatility;
              }
              return a.policy < b.policy;
            });

  // Per-objective winners via the paper's best-performance ranking.
  for (Objective objective : kAllObjectives) {
    std::vector<PolicySeries> series;
    series.reserve(input.policies.size());
    for (std::size_t p = 0; p < input.policies.size(); ++p) {
      series.push_back(objective_series(input, p, objective));
    }
    const auto ranked = rank_policies(series, RankBy::BestPerformance);
    report.best_per_objective[static_cast<std::size_t>(objective)] =
        ranked.front().policy;
  }

  // Most consistent = lowest mean volatility in the weighted combination.
  report.most_consistent =
      std::min_element(report.ranked.begin(), report.ranked.end(),
                       [](const PolicyAdvice& a, const PolicyAdvice& b) {
                         if (a.mean_volatility != b.mean_volatility) {
                           return a.mean_volatility < b.mean_volatility;
                         }
                         return a.policy < b.policy;
                       })
          ->policy;

  std::ostringstream summary;
  const PolicyAdvice& best = report.ranked.front();
  summary << "Recommended policy: " << best.policy << " (risk-adjusted score "
          << best.score << " = performance " << best.mean_performance
          << " - " << config.risk_aversion << " x volatility "
          << best.mean_volatility << " across "
          << input.points.front().size() << " scenarios).";
  if (report.most_consistent != best.policy) {
    summary << " Most consistent alternative: " << report.most_consistent
            << '.';
  }
  for (Objective objective : kAllObjectives) {
    const auto& winner =
        report.best_per_objective[static_cast<std::size_t>(objective)];
    if (winner != best.policy) {
      summary << " If only " << to_string(objective) << " matters: "
              << winner << '.';
    }
  }
  report.summary = summary.str();
  return report;
}

std::vector<WeightSweepPoint> weight_sensitivity(const AdvisorInput& input,
                                                 Objective focus,
                                                 std::size_t steps,
                                                 const AdvisorConfig& config) {
  if (steps < 2) {
    throw std::invalid_argument("weight_sensitivity: steps < 2");
  }
  const auto focus_index = static_cast<std::size_t>(focus);
  // Proportions of the non-focus objectives in the base config.
  double rest_total = 0.0;
  for (std::size_t o = 0; o < 4; ++o) {
    if (o != focus_index) rest_total += config.objective_weights[o];
  }

  std::vector<WeightSweepPoint> points;
  points.reserve(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    const double w =
        static_cast<double>(i) / static_cast<double>(steps - 1);
    AdvisorConfig step_config = config;
    step_config.objective_weights[focus_index] = w;
    for (std::size_t o = 0; o < 4; ++o) {
      if (o == focus_index) continue;
      const double proportion =
          rest_total > 0.0 ? config.objective_weights[o] / rest_total
                           : 1.0 / 3.0;
      step_config.objective_weights[o] = (1.0 - w) * proportion;
    }
    const AdvisorReport report = advise(input, step_config);
    points.push_back({w, report.ranked.front().policy,
                      report.ranked.front().score});
  }
  return points;
}

}  // namespace utilrisk::core
