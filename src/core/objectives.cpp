#include "core/objectives.hpp"

#include <ostream>
#include <stdexcept>
#include <string>

namespace utilrisk::core {

std::string_view to_string(Objective objective) {
  switch (objective) {
    case Objective::Wait: return "wait";
    case Objective::Sla: return "SLA";
    case Objective::Reliability: return "reliability";
    case Objective::Profitability: return "profitability";
  }
  return "?";
}

Objective parse_objective(std::string_view name) {
  for (Objective objective : kAllObjectives) {
    if (to_string(objective) == name) return objective;
  }
  throw std::invalid_argument("parse_objective: unknown objective '" +
                              std::string(name) + "'");
}

bool higher_is_better(Objective objective) {
  return objective != Objective::Wait;
}

double ObjectiveValues::get(Objective objective) const {
  switch (objective) {
    case Objective::Wait: return wait;
    case Objective::Sla: return sla;
    case Objective::Reliability: return reliability;
    case Objective::Profitability: return profitability;
  }
  throw std::invalid_argument("ObjectiveValues::get: unknown objective");
}

ObjectiveValues compute_objectives(const ObjectiveInputs& in) {
  if (in.fulfilled > in.accepted || in.accepted > in.submitted) {
    throw std::invalid_argument(
        "compute_objectives: require fulfilled <= accepted <= submitted");
  }
  ObjectiveValues values;
  values.wait = in.fulfilled > 0
                    ? in.wait_sum_fulfilled / static_cast<double>(in.fulfilled)
                    : 0.0;
  values.sla = in.submitted > 0 ? static_cast<double>(in.fulfilled) /
                                      static_cast<double>(in.submitted) * 100.0
                                : 0.0;
  values.reliability =
      in.accepted > 0 ? static_cast<double>(in.fulfilled) /
                            static_cast<double>(in.accepted) * 100.0
                      : 0.0;
  values.profitability =
      in.total_budget > 0.0 ? in.total_utility / in.total_budget * 100.0
                            : 0.0;
  return values;
}

std::ostream& operator<<(std::ostream& out, const ObjectiveValues& values) {
  out << "wait=" << values.wait << "s SLA=" << values.sla
      << "% reliability=" << values.reliability
      << "% profitability=" << values.profitability << '%';
  return out;
}

}  // namespace utilrisk::core
