// Normalisation of raw objective values onto [0, 1] (paper §4.1):
// 0 is the worst possible performance, 1 the best.
//
// Percentage objectives (SLA, reliability, profitability) map by /100.
// The wait objective is open-ended (seconds, lower = better); the paper
// says only to "normalize accordingly", so the strategy is pluggable:
//
//  - MinMaxAcrossPolicies (default): within one scenario value, each
//    policy's wait is min-max normalised against the other policies being
//    compared: norm = (max - w) / (max - min). Reproduces the paper's
//    plots where Libra's zero wait is the ideal 1 and the slowest queue
//    policy is pinned near 0. When all policies wait equally the value is
//    1 (no policy can do relatively better).
//  - Reciprocal: norm = 1 / (1 + wait / tau); absolute,
//    comparison-set-independent (used by the normalisation ablation
//    bench).
#pragma once

#include <vector>

#include "core/objectives.hpp"

namespace utilrisk::core {

enum class WaitNormalization {
  MinMaxAcrossPolicies,
  Reciprocal,
};

[[nodiscard]] const char* to_string(WaitNormalization strategy);

struct NormalizationConfig {
  WaitNormalization wait = WaitNormalization::MinMaxAcrossPolicies;
  /// Timescale of the reciprocal strategy: a wait of tau normalises to 0.5.
  double reciprocal_tau = 3600.0;
};

/// Clamped percentage -> [0, 1]. Negative profitability (bid-model
/// penalties exceeding earnings) is the worst case: 0.
[[nodiscard]] double normalize_percentage(double percent);

/// Normalises one objective's raw values across the policies under
/// comparison. `raw[p][v]` is policy p's raw value at scenario value v
/// (all rows must have equal length). Returns a matrix of the same shape
/// with entries in [0, 1], 1 = best.
[[nodiscard]] std::vector<std::vector<double>> normalize_objective(
    Objective objective, const std::vector<std::vector<double>>& raw,
    const NormalizationConfig& config = {});

}  // namespace utilrisk::core
