// A-priori risk analysis: policy recommendation from a-posteriori results.
//
// The paper's conclusion proposes that the evaluation results "which
// constitute an a posteriori risk analysis of policies can later be used
// to generate an a priori risk analysis of policies by identifying
// possible risks for future utility computing situations." This module is
// that step: given the separate-risk points of every (policy, scenario,
// objective) measured once, it scores policies for a *future* operating
// point described by objective weights and a risk-aversion level, without
// re-running any simulation.
#pragma once

#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "core/objectives.hpp"
#include "core/ranking.hpp"
#include "core/separate_risk.hpp"

namespace utilrisk::core {

/// Measured a-posteriori data: one entry per policy, with
/// points[scenario][objective] from the separate risk analysis.
struct AdvisorInput {
  std::vector<std::string> policies;
  /// points[policy][scenario][objective index]
  std::vector<std::vector<std::array<RiskPoint, 4>>> points;

  void validate() const;
};

/// The provider's future operating preferences.
struct AdvisorConfig {
  /// Objective weights in kAllObjectives order (wait, SLA, reliability,
  /// profitability); must sum to 1. Equal by default, per the paper's
  /// experiments.
  std::array<double, 4> objective_weights = {0.25, 0.25, 0.25, 0.25};
  /// 0 = score on expected performance only; 1 = subtract one full unit of
  /// volatility per unit of risk. The classic mean-minus-lambda-sigma
  /// risk-adjusted score.
  double risk_aversion = 0.5;

  /// Rejects malformed preferences with a structured std::invalid_argument
  /// (never silently renormalises): every weight must be finite and in
  /// [0, 1], the weights must sum to 1 within 1e-9, and risk_aversion must
  /// be finite and >= 0. NaN fails every check by construction.
  void validate() const;

  /// Parses "w,x,y,z" into objective weights (kAllObjectives order) with
  /// the same structured errors: exactly four comma-separated finite
  /// numbers, no trailing garbage. Does NOT check the sum — callers
  /// compose the result into a config and call validate().
  [[nodiscard]] static std::array<double, 4> parse_weights(
      std::string_view csv);
};

/// Scored policy under the configured preferences.
struct PolicyAdvice {
  std::string policy;
  /// mean performance - risk_aversion * mean volatility, over all
  /// scenarios, of the weighted objective combination.
  double score = 0.0;
  double mean_performance = 0.0;
  double mean_volatility = 0.0;
  /// Aggregates of the integrated points (Table II semantics).
  PolicyRankStats stats;
};

struct AdvisorReport {
  /// Best first by risk-adjusted score.
  std::vector<PolicyAdvice> ranked;
  /// Winner of each single objective (by the paper's best-performance
  /// ranking applied per objective).
  std::array<std::string, 4> best_per_objective;
  /// Policy with the lowest mean volatility in the weighted combination.
  std::string most_consistent;
  /// Human-readable rationale.
  std::string summary;
};

/// Scores every policy for the given preferences. Throws
/// std::invalid_argument on malformed input (ragged matrices, weights not
/// summing to 1, negative risk aversion).
[[nodiscard]] AdvisorReport advise(const AdvisorInput& input,
                                   const AdvisorConfig& config = {});

/// One step of a weight sweep: the focus objective's weight and the
/// winning policy at that weight.
struct WeightSweepPoint {
  double weight = 0.0;
  std::string winner;
  double score = 0.0;
};

/// §4.2 sensitivity analysis: sweeps the focus objective's weight from 0
/// to 1 in `steps` equal increments (the remaining weight is split over
/// the other three objectives in the proportions of `config`'s weights),
/// recording the risk-adjusted winner at each step. The points where the
/// winner changes are the crossover weights a provider should know before
/// committing to a policy. Requires steps >= 2.
[[nodiscard]] std::vector<WeightSweepPoint> weight_sensitivity(
    const AdvisorInput& input, Objective focus, std::size_t steps = 11,
    const AdvisorConfig& config = {});

}  // namespace utilrisk::core
