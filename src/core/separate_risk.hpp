// Separate risk analysis (paper §4.1, eqns 5-6): performance and
// volatility of one objective over the values of one scenario.
#pragma once

#include <span>

namespace utilrisk::core {

/// One point in a risk analysis plot: (volatility, performance).
struct RiskPoint {
  double performance = 0.0;  ///< mu: mean of normalised results (eqn 5)
  double volatility = 0.0;   ///< sigma: population stddev (eqn 6)

  friend bool operator==(const RiskPoint&, const RiskPoint&) = default;
};

/// Computes eqns 5-6 over normalised results (each in [0, 1]). Throws
/// std::invalid_argument on an empty span or out-of-range entries.
[[nodiscard]] RiskPoint separate_risk(std::span<const double> normalized);

}  // namespace utilrisk::core
