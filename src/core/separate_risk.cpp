#include "core/separate_risk.hpp"

#include <cmath>
#include <stdexcept>

namespace utilrisk::core {

RiskPoint separate_risk(std::span<const double> normalized) {
  if (normalized.empty()) {
    throw std::invalid_argument("separate_risk: no results");
  }
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : normalized) {
    if (!(x >= -1e-12 && x <= 1.0 + 1e-12)) {
      throw std::invalid_argument(
          "separate_risk: normalised result outside [0,1]");
    }
    sum += x;
    sum_sq += x * x;
  }
  const double n = static_cast<double>(normalized.size());
  RiskPoint point;
  point.performance = sum / n;
  // eqn 6: population variance via E[x^2] - mu^2; clamp the tiny negative
  // values floating-point cancellation can produce.
  const double variance =
      sum_sq / n - point.performance * point.performance;
  point.volatility = std::sqrt(variance > 0.0 ? variance : 0.0);
  return point;
}

}  // namespace utilrisk::core
