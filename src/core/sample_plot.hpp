// The sample risk analysis plot of Fig. 1 / Tables II-IV: eight synthetic
// policies A-H over five scenarios. Point sets are reconstructed from the
// figure so that every Table II aggregate (max/min/difference of
// performance and volatility) matches exactly, including the qualitative
// trend gradients (B zero, C/D/E decreasing, F/G/H increasing) and the
// point concentration that ranks C over D.
#pragma once

#include <vector>

#include "core/risk_plot.hpp"

namespace utilrisk::core {

[[nodiscard]] inline core::RiskPlot sample_risk_plot() {
  using core::PolicySeries;
  using core::RiskPoint;
  core::RiskPlot plot;
  plot.title = "Fig. 1: sample risk analysis plot";
  plot.scenarios = {"s1", "s2", "s3", "s4", "s5"};
  auto series = [](const char* name,
                   std::vector<RiskPoint> points) -> PolicySeries {
    return {name, std::move(points)};
  };
  // (volatility, performance) listed as {performance, volatility} fields.
  plot.series = {
      // A: ideal — identical best points, no trend line.
      series("A", {{1.0, 0.0}, {1.0, 0.0}, {1.0, 0.0}, {1.0, 0.0}, {1.0, 0.0}}),
      // B: constant performance 0.9, volatility 0.3..0.6 (zero gradient).
      series("B", {{0.9, 0.30},
                   {0.9, 0.375},
                   {0.9, 0.45},
                   {0.9, 0.525},
                   {0.9, 0.60}}),
      // C: perf 0.2..0.7, vol 0.3..1.0, decreasing gradient, points
      // concentrated near the (0.3, 0.7) corner.
      series("C", {{0.70, 0.30},
                   {0.68, 0.32},
                   {0.66, 0.35},
                   {0.62, 0.40},
                   {0.20, 1.00}}),
      // D: same envelope as C but evenly spread.
      series("D", {{0.700, 0.300},
                   {0.575, 0.475},
                   {0.450, 0.650},
                   {0.325, 0.825},
                   {0.200, 1.000}}),
      // E: perf 0.5..0.7, vol 0.1..0.3, decreasing gradient.
      series("E", {{0.70, 0.10},
                   {0.65, 0.15},
                   {0.60, 0.20},
                   {0.55, 0.25},
                   {0.50, 0.30}}),
      // F: perf 0.2..0.7, vol 0.3..0.7, increasing gradient.
      series("F", {{0.200, 0.30},
                   {0.325, 0.40},
                   {0.450, 0.50},
                   {0.575, 0.60},
                   {0.700, 0.70}}),
      // G: perf 0.4..0.7, vol 0.3..1.0, increasing gradient.
      series("G", {{0.400, 0.300},
                   {0.475, 0.475},
                   {0.550, 0.650},
                   {0.625, 0.825},
                   {0.700, 1.000}}),
      // H: perf 0.2..0.7, vol 0.3..1.0, increasing gradient.
      series("H", {{0.200, 0.300},
                   {0.325, 0.475},
                   {0.450, 0.650},
                   {0.575, 0.825},
                   {0.700, 1.000}}),
  };
  return plot;
}

}  // namespace utilrisk::core
