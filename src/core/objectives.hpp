// The four essential objectives of a commercial computing service
// (paper §3, Table I, eqns 1-4).
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string_view>

#include "economy/money.hpp"

namespace utilrisk::core {

/// Table I. Three user-centric objectives plus one provider-centric.
enum class Objective : std::uint8_t {
  Wait = 0,           ///< manage wait time for SLA acceptance (eqn 1)
  Sla = 1,            ///< meet SLA requests (eqn 2)
  Reliability = 2,    ///< ensure reliability of accepted SLA (eqn 3)
  Profitability = 3,  ///< attain profitability (eqn 4)
};

inline constexpr std::array<Objective, 4> kAllObjectives = {
    Objective::Wait, Objective::Sla, Objective::Reliability,
    Objective::Profitability};

[[nodiscard]] std::string_view to_string(Objective objective);

/// Parses "wait" / "SLA" / "reliability" / "profitability"; throws
/// std::invalid_argument otherwise.
[[nodiscard]] Objective parse_objective(std::string_view name);

/// True if larger raw values are better (SLA, reliability, profitability);
/// false for wait, where lower is better (§3).
[[nodiscard]] bool higher_is_better(Objective objective);

/// Tallies produced by one simulation run, sufficient to evaluate all four
/// objectives. m = submitted, n = accepted, n_SLA = fulfilled.
struct ObjectiveInputs {
  std::uint64_t submitted = 0;  ///< m
  std::uint64_t accepted = 0;   ///< n
  std::uint64_t fulfilled = 0;  ///< n_SLA
  /// Sum over fulfilled jobs of (start - submit), seconds.
  double wait_sum_fulfilled = 0.0;
  /// Sum of utility over accepted jobs (may be negative in the bid model).
  economy::Money total_utility = 0.0;
  /// Sum of budget over all submitted jobs.
  economy::Money total_budget = 0.0;
};

/// Raw (un-normalised) objective values.
struct ObjectiveValues {
  double wait = 0.0;           ///< eqn 1: average wait of fulfilled jobs, s
  double sla = 0.0;            ///< eqn 2: n_SLA / m * 100
  double reliability = 0.0;    ///< eqn 3: n_SLA / n * 100
  double profitability = 0.0;  ///< eqn 4: sum(u) / sum(b) * 100

  [[nodiscard]] double get(Objective objective) const;
};

/// Evaluates eqns 1-4. Degenerate denominators (no fulfilled jobs, no
/// accepted jobs, zero budget) yield the worst value of the objective:
/// wait 0 (vacuous; no fulfilled job implies SLA = 0 anyway), percentages 0.
[[nodiscard]] ObjectiveValues compute_objectives(const ObjectiveInputs& in);

std::ostream& operator<<(std::ostream& out, const ObjectiveValues& values);

}  // namespace utilrisk::core
