#include "core/ranking.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace utilrisk::core {

namespace {

/// Three-way compare with tolerance: negative when a is "smaller".
int fuzzy_compare(double a, double b, double tolerance) {
  if (std::fabs(a - b) <= tolerance) return 0;
  return a < b ? -1 : 1;
}

/// Compares two policies under a criterion; true when `a` ranks strictly
/// better than `b`.
bool ranks_better(const PolicyRankStats& a, const PolicyRankStats& b,
                  RankBy criterion, double tolerance) {
  struct Key {
    double value;
    bool higher_better;
  };
  // Paper §4.3 key sequences.
  std::vector<Key> ka, kb;
  auto push = [&](double va, double vb, bool higher_better) {
    ka.push_back({va, higher_better});
    kb.push_back({vb, higher_better});
  };
  if (criterion == RankBy::BestPerformance) {
    push(a.max_performance, b.max_performance, true);
    push(a.min_volatility, b.min_volatility, false);
    push(a.performance_difference(), b.performance_difference(), false);
    push(a.volatility_difference(), b.volatility_difference(), false);
  } else {
    push(a.min_volatility, b.min_volatility, false);
    push(a.max_performance, b.max_performance, true);
    push(a.volatility_difference(), b.volatility_difference(), false);
    push(a.performance_difference(), b.performance_difference(), false);
  }
  for (std::size_t i = 0; i < ka.size(); ++i) {
    const int cmp = fuzzy_compare(ka[i].value, kb[i].value, tolerance);
    if (cmp != 0) return ka[i].higher_better ? cmp > 0 : cmp < 0;
  }
  // (v) gradient preference.
  if (gradient_rank(a.gradient) != gradient_rank(b.gradient)) {
    return gradient_rank(a.gradient) < gradient_rank(b.gradient);
  }
  // Concentration tie-break (policy C vs D in Table III).
  const int cmp = fuzzy_compare(a.concentration, b.concentration, tolerance);
  if (cmp != 0) return cmp > 0;
  return a.policy < b.policy;  // deterministic final order
}

}  // namespace

PolicyRankStats compute_rank_stats(const PolicySeries& series) {
  if (series.points.empty()) {
    throw std::invalid_argument("compute_rank_stats: series has no points");
  }
  PolicyRankStats stats;
  stats.policy = series.policy;
  stats.max_performance = stats.min_performance =
      series.points.front().performance;
  stats.max_volatility = stats.min_volatility =
      series.points.front().volatility;
  for (const RiskPoint& p : series.points) {
    stats.max_performance = std::max(stats.max_performance, p.performance);
    stats.min_performance = std::min(stats.min_performance, p.performance);
    stats.max_volatility = std::max(stats.max_volatility, p.volatility);
    stats.min_volatility = std::min(stats.min_volatility, p.volatility);
  }
  stats.gradient = classify_gradient(fit_trend(series));

  std::size_t near = 0;
  for (const RiskPoint& p : series.points) {
    const double dp = p.performance - stats.max_performance;
    const double dv = p.volatility - stats.min_volatility;
    if (std::hypot(dp, dv) <= kConcentrationRadius) ++near;
  }
  stats.concentration =
      static_cast<double>(near) / static_cast<double>(series.points.size());
  return stats;
}

std::vector<PolicyRankStats> rank_policies(
    const std::vector<PolicySeries>& series, RankBy criterion,
    double tolerance) {
  std::vector<PolicyRankStats> stats;
  stats.reserve(series.size());
  for (const PolicySeries& s : series) {
    stats.push_back(compute_rank_stats(s));
  }
  std::sort(stats.begin(), stats.end(),
            [&](const PolicyRankStats& a, const PolicyRankStats& b) {
              return ranks_better(a, b, criterion, tolerance);
            });
  return stats;
}

}  // namespace utilrisk::core
