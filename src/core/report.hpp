// Rendering of risk analysis results: CSV, gnuplot data blocks, ASCII
// ranking tables (Tables II-IV) and a terminal scatter plot.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/ranking.hpp"
#include "core/risk_plot.hpp"

namespace utilrisk::core {

/// CSV: plot,policy,scenario,volatility,performance (one row per point).
void write_plot_csv(std::ostream& out, const RiskPlot& plot,
                    bool header = true);

/// Gnuplot-friendly: one indexed data block per policy
/// ("# policy <name>" then "volatility performance" rows, blank-line
/// separated) — plot with `plot 'f.dat' index N`.
void write_plot_gnuplot(std::ostream& out, const RiskPlot& plot);

/// Table II: per-policy max/min/difference of performance and volatility.
void write_stats_table(std::ostream& out,
                       const std::vector<PolicyRankStats>& stats);

/// Tables III/IV: ranked policies with the key columns of the paper.
void write_ranking_table(std::ostream& out,
                         const std::vector<PolicyRankStats>& ranked,
                         RankBy criterion);

/// ASCII scatter of the plot: performance (y, 0..1) over volatility
/// (x, auto-scaled). Each policy is drawn with a distinct letter;
/// overlapping points show '*'.
void write_ascii_scatter(std::ostream& out, const RiskPlot& plot,
                         int width = 64, int height = 20);

/// Fixed-width number formatting used across reports (3 decimals).
[[nodiscard]] std::string format_value(double value);

/// Emits a self-contained gnuplot script that renders `data_file` (written
/// by write_plot_gnuplot) in the paper's figure style: performance (y,
/// 0..1) over volatility (x), one point type per policy, optional
/// least-squares trend lines. Run with `gnuplot <script>` to produce
/// <output_png>.
void write_gnuplot_script(std::ostream& out, const RiskPlot& plot,
                          const std::string& data_file,
                          const std::string& output_png,
                          bool trend_lines = true);

}  // namespace utilrisk::core
