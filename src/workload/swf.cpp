#include "workload/swf.hpp"

#include <array>
#include <charconv>
#include <cmath>
#include <fstream>
#include <map>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace utilrisk::workload {

namespace {

constexpr int kSwfFieldCount = 18;

// Field indices (0-based) we consume.
constexpr int kFieldSubmit = 1;
constexpr int kFieldRunTime = 3;
constexpr int kFieldAllocProcs = 4;
constexpr int kFieldReqProcs = 7;
constexpr int kFieldReqTime = 8;
constexpr int kFieldStatus = 10;

bool parse_double(std::string_view token, double& out) {
  const char* begin = token.data();
  const char* end = begin + token.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

}  // namespace

SwfParseResult parse_swf(std::istream& in, const SwfLoadOptions& options) {
  SwfParseResult result;
  std::string line;
  std::size_t line_number = 0;
  std::array<double, kSwfFieldCount> fields{};

  while (std::getline(in, line)) {
    ++line_number;
    // Strip trailing CR from DOS-formatted archive files.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::string_view view(line);
    // Skip leading whitespace.
    const auto first = view.find_first_not_of(" \t");
    if (first == std::string_view::npos) continue;
    if (view[first] == ';') {
      result.header.push_back(line);
      continue;
    }

    // Tokenise.
    int count = 0;
    std::size_t pos = first;
    bool bad = false;
    while (pos < view.size() && count < kSwfFieldCount) {
      const auto next = view.find_first_of(" \t", pos);
      const auto len =
          (next == std::string_view::npos ? view.size() : next) - pos;
      if (!parse_double(view.substr(pos, len), fields[count])) {
        bad = true;
        break;
      }
      ++count;
      pos = view.find_first_not_of(" \t", pos + len);
      if (pos == std::string_view::npos) break;
    }
    if (bad || count < kFieldStatus + 1) {
      result.skipped.push_back(
          {line_number, bad ? "unparseable token" : "too few fields"});
      continue;
    }

    const double status = fields[kFieldStatus];
    if (options.completed_only && status != 1.0) {
      result.skipped.push_back({line_number, "status != completed"});
      continue;
    }

    Job job;
    job.id = static_cast<JobId>(result.jobs.size() + 1);
    job.submit_time = fields[kFieldSubmit];
    job.actual_runtime = fields[kFieldRunTime];
    // Prefer requested procs; fall back to allocated (some traces leave
    // one of the two at -1).
    double procs = fields[kFieldReqProcs];
    if (procs <= 0) procs = fields[kFieldAllocProcs];
    job.procs = procs > 0 ? static_cast<std::uint32_t>(procs) : 0;
    // Requested time is the user estimate; fall back to actual runtime.
    job.estimated_runtime =
        fields[kFieldReqTime] > 0 ? fields[kFieldReqTime] : job.actual_runtime;

    if (options.drop_degenerate &&
        (job.actual_runtime <= 0.0 || job.procs == 0)) {
      result.skipped.push_back({line_number, "degenerate job"});
      continue;
    }
    result.jobs.push_back(job);
  }
  if (in.bad()) {
    throw std::ios_base::failure("parse_swf: stream read error");
  }

  if (options.keep_last > 0 && result.jobs.size() > options.keep_last) {
    result.jobs.erase(result.jobs.begin(),
                      result.jobs.end() - static_cast<std::ptrdiff_t>(
                                              options.keep_last));
  }
  if (options.rebase_submit_times && !result.jobs.empty()) {
    const double base = result.jobs.front().submit_time;
    JobId id = 1;
    for (auto& job : result.jobs) {
      job.submit_time -= base;
      job.id = id++;
    }
  }
  return result;
}

SwfParseResult load_swf(const std::string& path,
                        const SwfLoadOptions& options) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_swf: cannot open " + path);
  }
  return parse_swf(in, options);
}

void save_swf(std::ostream& out, const std::vector<Job>& jobs,
              const std::vector<std::string>& header) {
  out.precision(12);  // sub-millisecond fidelity over multi-month horizons
  for (const auto& line : header) {
    if (!line.empty() && line.front() == ';') {
      out << line << '\n';
    } else {
      out << "; " << line << '\n';
    }
  }
  for (const auto& job : jobs) {
    out << job.id << ' ' << job.submit_time << ' ' << -1 << ' '
        << job.actual_runtime << ' ' << job.procs << ' ' << -1 << ' ' << -1
        << ' ' << job.procs << ' ' << job.estimated_runtime << ' ' << -1
        << ' ' << 1 << ' ' << -1 << ' ' << -1 << ' ' << -1 << ' ' << -1
        << ' ' << -1 << ' ' << -1 << ' ' << -1 << '\n';
  }
}

void save_qos_sidecar(std::ostream& out, const std::vector<Job>& jobs) {
  out.precision(12);
  out << "id,deadline_duration,budget,penalty_rate,urgency\n";
  for (const Job& job : jobs) {
    out << job.id << ',' << job.deadline_duration << ',' << job.budget
        << ',' << job.penalty_rate << ',' << to_string(job.urgency) << '\n';
  }
}

std::size_t load_qos_sidecar(std::istream& in, std::vector<Job>& jobs) {
  std::map<JobId, Job*> by_id;
  for (Job& job : jobs) by_id[job.id] = &job;

  std::string line;
  std::size_t line_number = 0;
  std::size_t updated = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line_number == 1 && line.rfind("id,", 0) == 0) continue;  // header

    std::istringstream row(line);
    std::string token;
    auto next = [&](const char* what) {
      if (!std::getline(row, token, ',')) {
        throw std::runtime_error("load_qos_sidecar: line " +
                                 std::to_string(line_number) + ": missing " +
                                 what);
      }
      return token;
    };
    const std::string id_text = next("id");
    double id_value = 0.0;
    if (!parse_double(id_text, id_value) || id_value < 1.0) {
      throw std::runtime_error("load_qos_sidecar: line " +
                               std::to_string(line_number) + ": bad id '" +
                               id_text + "'");
    }
    const auto it = by_id.find(static_cast<JobId>(id_value));
    if (it == by_id.end()) {
      throw std::runtime_error("load_qos_sidecar: line " +
                               std::to_string(line_number) +
                               ": unknown job id " + id_text);
    }
    Job& job = *it->second;
    double deadline = 0.0;
    double budget = 0.0;
    double penalty = 0.0;
    if (!parse_double(next("deadline"), deadline) ||
        !parse_double(next("budget"), budget) ||
        !parse_double(next("penalty"), penalty) || deadline <= 0.0) {
      throw std::runtime_error("load_qos_sidecar: line " +
                               std::to_string(line_number) +
                               ": malformed QoS values");
    }
    // Same SLA-term preconditions validate_sla_terms enforces for the
    // synthetic path (eqns 9-10): no negative money terms sneak in via a
    // hand-edited sidecar.
    if (!std::isfinite(deadline) || !std::isfinite(budget) || budget < 0.0 ||
        !std::isfinite(penalty) || penalty < 0.0) {
      throw std::runtime_error("load_qos_sidecar: line " +
                               std::to_string(line_number) +
                               ": budget and penalty_rate must be finite "
                               "and >= 0, deadline finite");
    }
    const std::string urgency = next("urgency");
    if (urgency != "high" && urgency != "low") {
      throw std::runtime_error("load_qos_sidecar: line " +
                               std::to_string(line_number) +
                               ": unknown urgency '" + urgency + "'");
    }
    job.deadline_duration = deadline;
    job.budget = budget;
    job.penalty_rate = penalty;
    job.urgency = urgency == "high" ? Urgency::High : Urgency::Low;
    ++updated;
  }
  return updated;
}

}  // namespace utilrisk::workload
