#include "workload/workload.hpp"

#include <stdexcept>
#include <utility>

#include "workload/generator.hpp"

namespace utilrisk::workload {

void apply_arrival_delay_factor(std::vector<Job>& jobs, double factor) {
  if (factor <= 0.0) {
    throw std::invalid_argument(
        "apply_arrival_delay_factor: factor must be > 0");
  }
  if (jobs.size() < 2) return;
  const double base = jobs.front().submit_time;
  double prev_original = base;
  double prev_scaled = base;
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    const double gap = jobs[i].submit_time - prev_original;
    if (gap < 0.0) {
      throw std::invalid_argument(
          "apply_arrival_delay_factor: jobs not in submission order");
    }
    prev_original = jobs[i].submit_time;
    prev_scaled += gap * factor;
    jobs[i].submit_time = prev_scaled;
  }
}

void apply_estimate_inaccuracy(std::vector<Job>& jobs,
                               double inaccuracy_percent) {
  if (inaccuracy_percent < 0.0 || inaccuracy_percent > 100.0) {
    throw std::invalid_argument(
        "apply_estimate_inaccuracy: percent outside [0,100]");
  }
  const double blend = inaccuracy_percent / 100.0;
  for (auto& job : jobs) {
    job.estimated_runtime =
        job.actual_runtime +
        blend * (job.estimated_runtime - job.actual_runtime);
  }
}

WorkloadBuilder::WorkloadBuilder(const SyntheticSdscConfig& trace_config)
    : base_(generate_jobs(spec_for(trace_config))) {}

WorkloadBuilder::WorkloadBuilder(const std::string& generator_spec)
    : base_(generate_jobs(generator_spec)) {}

WorkloadBuilder::WorkloadBuilder(std::vector<Job> base_trace)
    : base_(std::move(base_trace)) {}

std::vector<Job> WorkloadBuilder::build(const QosConfig& qos,
                                        double arrival_delay_factor,
                                        double inaccuracy_percent) const {
  std::vector<Job> jobs = base_;
  apply_arrival_delay_factor(jobs, arrival_delay_factor);
  assign_qos(jobs, qos);
  apply_estimate_inaccuracy(jobs, inaccuracy_percent);
  return jobs;
}

}  // namespace utilrisk::workload
