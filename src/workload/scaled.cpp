#include "workload/scaled.hpp"

#include <algorithm>
#include <stdexcept>

namespace utilrisk::workload {

SyntheticSdscConfig scaled_sdsc_config(std::uint32_t node_count,
                                       std::uint32_t job_count,
                                       std::uint64_t seed) {
  if (node_count == 0) {
    throw std::invalid_argument("scaled_sdsc_config: node_count must be > 0");
  }
  SyntheticSdscConfig config;
  config.job_count = job_count;
  config.max_procs = std::min<std::uint32_t>(config.max_procs, node_count);
  config.mean_interarrival =
      config.mean_interarrival * 128.0 / static_cast<double>(node_count);
  config.seed = seed;
  return config;
}

}  // namespace utilrisk::workload
