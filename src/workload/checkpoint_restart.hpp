// Daly-style checkpoint-restart workload (registry method "daly").
//
// Models long-running applications that periodically write checkpoints
// so a node failure costs only the work since the last dump — the
// workload counterpart of the PR-1 fault-injection / bounded-retry
// resubmission path (cluster/failure.hpp RecoveryParams). Following
// Daly, "A higher order estimate of the optimum checkpoint interval for
// restart dumps" (FGCS 2006): for checkpoint write time delta and mean
// time to interrupt M, the optimum interval is
//
//   tau_opt = sqrt(2 delta M) * [1 + (1/3) sqrt(delta / (2M))
//                                  + (1/9) (delta / (2M))] - delta
//   (tau_opt = M when delta >= 2M)
//
// The generator draws each job's failure-free solve time, then inflates
// the dispatched runtime with one checkpoint write per completed
// interval. Pairing the same interval with
// RecoveryParams::checkpoint_interval (the "daly" scenario does) makes a
// restart resume from the last dump, so sweeping tau exposes Daly's
// tradeoff: short intervals pay overhead on every run, long intervals
// lose more work per failure.
#pragma once

#include <cstdint>
#include <vector>

#include "workload/job.hpp"

namespace utilrisk::workload {

struct DalyCheckpointConfig {
  std::uint32_t job_count = 2000;
  std::uint32_t max_procs = 128;
  double power_of_two_bias = 0.75;
  double mean_interarrival = 1969.0;    ///< seconds
  /// Failure-free solve time: lognormal mean/cv, clamped to
  /// [min_solve, max_solve] (long-running apps, hours not minutes).
  double mean_solve = 6.0 * 3600.0;
  double solve_cv = 1.0;
  double min_solve = 600.0;
  double max_solve = 48.0 * 3600.0;
  /// Checkpoint write time delta, seconds.
  double checkpoint_write_seconds = 120.0;
  /// Checkpoint interval tau, seconds; 0 = use
  /// daly_optimal_interval(delta, mtti).
  double checkpoint_interval = 0.0;
  /// Mean time to interrupt M feeding tau_opt, seconds.
  double mtti_seconds = 24.0 * 3600.0;
  /// Users estimate the checkpoint-inflated runtime with uniform
  /// padding in [pad_lo, pad_hi] (>= 1: checkpoint users know their
  /// solve time well but pad for safety).
  double estimate_pad_lo = 1.05;
  double estimate_pad_hi = 1.5;
  std::uint64_t seed = 42;
};

/// Daly's higher-order optimum checkpoint interval (header comment), in
/// seconds. Throws std::invalid_argument on non-positive inputs.
[[nodiscard]] double daly_optimal_interval(double checkpoint_write_seconds,
                                           double mtti_seconds);

/// The interval a config resolves to: its explicit checkpoint_interval,
/// or tau_opt when that is 0.
[[nodiscard]] double resolved_checkpoint_interval(
    const DalyCheckpointConfig& config);

/// Deterministic in the config (seed convention of generator.hpp). Jobs
/// in submission order, ids 1..N, first at t = 0; actual_runtime is the
/// checkpoint-inflated dispatch time; QoS fields left zero.
[[nodiscard]] std::vector<Job> generate_daly_checkpoint(
    const DalyCheckpointConfig& config);

}  // namespace utilrisk::workload
