// Pluggable workload-generator API (after the codes-workload method
// interface): every traffic shape the harness can offer is a *method*
// behind one interface —
//
//   load(spec)   configure the generator from a parsed spec and reset
//                its job stream;
//   get_next()   stream the next job in submission order (nullopt ends
//                the stream).
//
// Methods register themselves in a central registry under a short name
// and are addressed everywhere — experiment matrix, `utilrisk` CLI,
// loadgen, run manifests — by a spec string:
//
//   name                         e.g.  "sdsc"
//   name:key=value,key=value     e.g.  "zipf:tenants=1000000,theta=0.99"
//
// Keys may not repeat; unknown keys are rejected at load() time so a
// typo fails loudly instead of silently running the default workload.
// Composing methods forward dotted keys to their inner generator:
// "flash:base=lublin,base.serial_fraction=0.3,peak=8".
//
// Seed convention (uniform across every method): each generator accepts
//   seed=<u64>
// as its *sole* entropy source. The seed is expanded with sim::Rng
// (SplitMix64 -> xoshiro256**) into independent per-attribute child
// streams via Rng::split(), never std::random_device or wall clock, so
// one spec string is one bit-exact job stream on every platform, and
// consuming more draws for one attribute never reshuffles another.
// Harness layers (experiment config, loadgen) thread their own job-count
// and seed defaults into a spec with GeneratorSpec::set_default — an
// explicit key in the spec always wins.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "workload/job.hpp"

namespace utilrisk::workload {

/// A parsed "name:key=value,..." spec. Parameters keep their spec order
/// so to_string() round-trips what the user wrote (plus injected
/// defaults, which append).
struct GeneratorSpec {
  std::string method;
  std::vector<std::pair<std::string, std::string>> params;

  /// Parses a spec string; throws std::invalid_argument on an empty
  /// name, a parameter without '=', an empty key, or a repeated key.
  [[nodiscard]] static GeneratorSpec parse(const std::string& text);

  /// Canonical spec string ("name" or "name:k=v,...").
  [[nodiscard]] std::string to_string() const;

  /// Value of `key`, or nullptr when absent.
  [[nodiscard]] const std::string* find(const std::string& key) const;

  /// Appends key=value only when `key` is absent (harness-level default
  /// injection; an explicit spec key always wins).
  void set_default(const std::string& key, const std::string& value);

  // Typed lookups with defaults; throw std::invalid_argument naming the
  // key on malformed values.
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback) const;
  [[nodiscard]] std::uint32_t get_u32(const std::string& key,
                                      std::uint32_t fallback) const;
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;

  /// Throws std::invalid_argument naming the first key that is neither
  /// in `known` nor (when `allow_dotted_prefix` is non-empty) prefixed
  /// "<allow_dotted_prefix>.". Every method calls this in load().
  void require_known(const std::vector<std::string>& known,
                     const std::string& allow_dotted_prefix = "") const;
};

/// Exact round-trip formatting for doubles in spec strings (shortest
/// form that parses back to the same bits — std::to_chars).
[[nodiscard]] std::string format_double(double value);

/// The generator-method interface. Implementations must be deterministic
/// in their spec (seed convention above) and yield jobs in submission
/// order with ids 1..N, the first submission at t = 0 and QoS fields
/// left zero (qos.hpp assigns SLA terms downstream).
class WorkloadGenerator {
 public:
  virtual ~WorkloadGenerator() = default;

  /// The registered method name this instance implements.
  [[nodiscard]] virtual const char* method() const = 0;

  /// Validates the spec (unknown keys throw), configures the generator
  /// and (re)sets the stream to its first job.
  virtual void load(const GeneratorSpec& spec) = 0;

  /// Next job of the stream; nullopt = end of workload.
  [[nodiscard]] virtual std::optional<Job> get_next() = 0;
};

/// One parameter's documentation line for `utilrisk trace --list`.
struct GeneratorParamDoc {
  std::string key;
  std::string doc;
};

/// A registered method: name, summary, parameter docs and factory.
struct GeneratorMethod {
  std::string name;
  std::string summary;
  std::vector<GeneratorParamDoc> params;
  std::function<std::unique_ptr<WorkloadGenerator>()> create;
};

/// Registers a method (extension point for user code); throws
/// std::invalid_argument on a duplicate or empty name.
void register_generator(GeneratorMethod method);

/// All registered methods (built-ins are registered on first use), in
/// registration order: sdsc, lublin, swf, zipf, flash, mixshift, daly,
/// then any user registrations.
[[nodiscard]] const std::vector<GeneratorMethod>& registered_generators();

/// Creates and load()s the spec's method; throws std::invalid_argument
/// on an unknown method name or a bad spec.
[[nodiscard]] std::unique_ptr<WorkloadGenerator> make_generator(
    const GeneratorSpec& spec);

/// Drains a freshly loaded generator into a vector (the harness's batch
/// entry point; streaming consumers call get_next() themselves).
[[nodiscard]] std::vector<Job> generate_jobs(const GeneratorSpec& spec);
[[nodiscard]] std::vector<Job> generate_jobs(const std::string& spec_text);

// Canonical full-fidelity specs for the legacy config structs: every
// field is emitted, so routing a config through the registry reproduces
// the direct generator call bit for bit (the golden-digest contract).
struct SyntheticSdscConfig;
struct SyntheticLublinConfig;
[[nodiscard]] std::string spec_for(const SyntheticSdscConfig& config);
[[nodiscard]] std::string spec_for(const SyntheticLublinConfig& config);

}  // namespace utilrisk::workload
