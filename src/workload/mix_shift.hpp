// Mix-shift splice (registry method "mixshift"): switch the traffic mix
// from one generator to another at a fixed virtual time.
//
// The spliced stream is every job of the `before` stream submitted
// strictly before the switch time, followed by the whole `after` stream
// with its submit times shifted so it starts at the switch time. Ids are
// renumbered 1..N so the result honours the generator contract. The
// splice consumes no randomness: "mixshift:a=X,b=Y,t=T" is exactly as
// reproducible as X and Y themselves.
//
// This is the canonical workload for exercising the online risk advisor
// (docs/ADVISOR.md): the policy that scored best on the pre-switch mix
// is generally not the best one after it.
#pragma once

#include <cstddef>
#include <vector>

#include "workload/job.hpp"

namespace utilrisk::workload {

/// Splices `before` (jobs with submit_time < at, in submission order)
/// with `after` (every job, submit times shifted by +at). When
/// `max_jobs` > 0 the result is truncated to that many jobs. Ids are
/// renumbered 1..N. Throws std::invalid_argument when `at` is not a
/// finite positive time.
[[nodiscard]] std::vector<Job> splice_mix_shift(const std::vector<Job>& before,
                                                const std::vector<Job>& after,
                                                double at,
                                                std::size_t max_jobs = 0);

}  // namespace utilrisk::workload
