#include "workload/mix_shift.hpp"

#include <cmath>
#include <stdexcept>

namespace utilrisk::workload {

std::vector<Job> splice_mix_shift(const std::vector<Job>& before,
                                  const std::vector<Job>& after, double at,
                                  std::size_t max_jobs) {
  if (!std::isfinite(at) || !(at > 0.0)) {
    throw std::invalid_argument(
        "mix shift: switch time t must be a finite positive number of "
        "seconds");
  }
  std::vector<Job> out;
  out.reserve(before.size() + after.size());
  // Generators yield jobs in submission order, so the pre-switch phase
  // ends at the first job submitted at or past the switch time.
  for (const Job& job : before) {
    if (job.submit_time >= at) break;
    out.push_back(job);
  }
  for (const Job& job : after) {
    Job shifted = job;
    shifted.submit_time += at;
    out.push_back(shifted);
  }
  if (max_jobs > 0 && out.size() > max_jobs) out.resize(max_jobs);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].id = static_cast<JobId>(i + 1);
  }
  return out;
}

}  // namespace utilrisk::workload
