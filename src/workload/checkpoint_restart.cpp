#include "workload/checkpoint_restart.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/distributions.hpp"
#include "sim/rng.hpp"

namespace utilrisk::workload {

double daly_optimal_interval(double checkpoint_write_seconds,
                             double mtti_seconds) {
  if (checkpoint_write_seconds <= 0.0 || mtti_seconds <= 0.0 ||
      !std::isfinite(checkpoint_write_seconds) ||
      !std::isfinite(mtti_seconds)) {
    throw std::invalid_argument(
        "daly_optimal_interval: delta and MTTI must be positive and finite");
  }
  const double delta = checkpoint_write_seconds;
  const double m = mtti_seconds;
  if (delta >= 2.0 * m) return m;
  const double x = delta / (2.0 * m);
  return std::sqrt(2.0 * delta * m) *
             (1.0 + std::sqrt(x) / 3.0 + x / 9.0) -
         delta;
}

double resolved_checkpoint_interval(const DalyCheckpointConfig& config) {
  if (config.checkpoint_interval > 0.0) return config.checkpoint_interval;
  return daly_optimal_interval(config.checkpoint_write_seconds,
                               config.mtti_seconds);
}

std::vector<Job> generate_daly_checkpoint(const DalyCheckpointConfig& cfg) {
  if (cfg.job_count == 0) {
    throw std::invalid_argument("generate_daly_checkpoint: job_count == 0");
  }
  if (cfg.max_procs == 0) {
    throw std::invalid_argument("generate_daly_checkpoint: max_procs == 0");
  }
  if (cfg.mean_interarrival <= 0.0 || cfg.mean_solve <= 0.0) {
    throw std::invalid_argument(
        "generate_daly_checkpoint: means must be positive");
  }
  if (cfg.min_solve <= 0.0 || cfg.max_solve < cfg.min_solve) {
    throw std::invalid_argument(
        "generate_daly_checkpoint: need 0 < min_solve <= max_solve");
  }
  if (cfg.checkpoint_write_seconds <= 0.0 || cfg.checkpoint_interval < 0.0) {
    throw std::invalid_argument(
        "generate_daly_checkpoint: checkpoint knobs must be positive "
        "(interval may be 0 = optimal)");
  }
  if (cfg.estimate_pad_lo < 1.0 || cfg.estimate_pad_hi < cfg.estimate_pad_lo) {
    throw std::invalid_argument(
        "generate_daly_checkpoint: need 1 <= pad_lo <= pad_hi");
  }

  const double tau = resolved_checkpoint_interval(cfg);
  const double delta = cfg.checkpoint_write_seconds;

  sim::Rng rng(cfg.seed);
  // Independent per-attribute streams (seed convention, generator.hpp).
  sim::Rng arrivals = rng.split();
  sim::Rng sizes = rng.split();
  sim::Rng solves = rng.split();
  sim::Rng estimates = rng.split();

  std::vector<Job> jobs;
  jobs.reserve(cfg.job_count);
  double clock = 0.0;
  for (std::uint32_t i = 0; i < cfg.job_count; ++i) {
    Job job;
    job.id = i + 1;
    job.submit_time = clock;
    job.procs =
        sim::sample_job_size(sizes, cfg.max_procs, cfg.power_of_two_bias);
    const double solve = std::clamp(
        sim::sample_lognormal_mean_cv(solves, cfg.mean_solve, cfg.solve_cv),
        cfg.min_solve, cfg.max_solve);
    // One checkpoint write per *completed* interval: the final partial
    // interval runs to the finish line without dumping.
    const double dumps = std::max(0.0, std::ceil(solve / tau) - 1.0);
    job.actual_runtime = solve + dumps * delta;
    job.estimated_runtime =
        job.actual_runtime *
        estimates.uniform(cfg.estimate_pad_lo, cfg.estimate_pad_hi);
    jobs.push_back(job);
    clock += sim::sample_exponential(arrivals, cfg.mean_interarrival);
  }
  return jobs;
}

}  // namespace utilrisk::workload
