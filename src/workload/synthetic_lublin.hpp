// A second, independent workload model after Lublin & Feitelson ("The
// workload on parallel supercomputers: modeling the characteristics of
// rigid jobs", JPDC 2003), used to check that the paper's conclusions are
// not an artefact of the SDSC-SP2-matched generator:
//   - job size: a fraction of serial jobs; parallel sizes drawn
//     log-uniformly with strong power-of-two rounding;
//   - runtime: hyper-gamma — a mixture of two gamma distributions whose
//     mixing probability shifts with job size (bigger jobs skew long);
//   - arrivals: gamma inter-arrivals modulated by an empirical daily
//     arrival-rate cycle (quiet nights, mid-day peak).
// This is a faithful structural implementation with simplified parameter
// coupling, calibrated so its *means* can be pointed at the same targets
// as the SDSC generator while its shapes (burstiness, size mix, runtime
// tails) differ — exactly what a robustness check needs.
#pragma once

#include <cstdint>
#include <vector>

#include "workload/job.hpp"

namespace utilrisk::workload {

struct SyntheticLublinConfig {
  std::uint32_t job_count = 5000;
  std::uint32_t max_procs = 128;

  /// Fraction of strictly serial jobs (Lublin: ~0.24 on SP2-class logs).
  double serial_fraction = 0.24;
  /// Power-of-two rounding probability for parallel sizes (~0.75).
  double power_of_two_fraction = 0.75;

  /// Target mean inter-arrival (seconds); the daily cycle is renormalised
  /// so this is the realised long-run mean.
  double mean_interarrival = 1969.0;
  /// Gamma shape for inter-arrivals (<1 = burstier than Poisson).
  double arrival_shape = 0.6;

  /// Hyper-gamma runtime mixture: gamma(shape1, scale1) for the short
  /// mode, gamma(shape2, scale2) for the long mode. Means:
  /// shape*scale = 1200 s and 16000 s respectively; the mixing
  /// probability of the short mode falls linearly from p_short_serial to
  /// p_short_wide as job size grows to max_procs.
  double short_shape = 2.0;
  double short_scale = 600.0;
  double long_shape = 1.4;
  double long_scale = 11430.0;
  double p_short_serial = 0.75;
  double p_short_wide = 0.35;
  double max_runtime = 18.0 * 3600.0;
  double min_runtime = 10.0;

  /// Estimate model shared with the SDSC generator: fraction of
  /// over-estimates and padding ranges.
  double overestimate_fraction = 0.92;
  double over_factor_lo = 1.1;
  double over_factor_hi = 5.0;
  double under_factor_lo = 0.35;
  double under_factor_hi = 0.95;

  std::uint64_t seed = 1337;
};

/// Deterministic in the config. Jobs in submission order, first at t = 0,
/// ids 1..N; QoS fields left zero (see qos.hpp).
[[nodiscard]] std::vector<Job> generate_synthetic_lublin(
    const SyntheticLublinConfig& config);

}  // namespace utilrisk::workload
