// Zipfian-skewed multi-tenant workload (registry method "zipf").
//
// Models a commercial service shared by a large user population — up to
// millions of tenants — where per-tenant demand is heavy-tailed: each
// arrival's owner is drawn from a Zipfian distribution over tenant
// ranks, so the hottest tenant dominates while the long tail submits
// once or never (YCSB's ZipfianGenerator after Gray et al., "Quickly
// generating billion-record synthetic databases"). The tenant id is
// stamped on every job (Job::tenant, rank order: tenant 1 is the
// hottest), giving sharding/fairness experiments a real key to split on.
//
// Job shapes (runtime, size, estimate) follow the same families as the
// SDSC generator but default to the short, narrow, frequent jobs of an
// interactive service rather than batch supercomputing.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"
#include "workload/job.hpp"

namespace utilrisk::workload {

/// Constant-time Zipfian rank sampler over {0, ..., n-1} with exponent
/// `theta` in [0, 1) (YCSB's zipfian constant; 0 = uniform, 0.99 =
/// classic YCSB skew). P(rank = r) ~ 1 / (r+1)^theta. The zeta
/// normaliser is computed once at construction: exactly up to 10^7
/// ranks, then extended with the integral tail approximation so
/// hundred-million-tenant populations stay O(10^7) to set up.
class ZipfianSampler {
 public:
  /// Throws std::invalid_argument when n == 0 or theta outside [0, 1).
  ZipfianSampler(std::uint64_t n, double theta);

  /// Draws a rank in [0, n): rank 0 is the most popular.
  [[nodiscard]] std::uint64_t sample(sim::Rng& rng) const;

  [[nodiscard]] std::uint64_t n() const { return n_; }
  [[nodiscard]] double theta() const { return theta_; }

 private:
  std::uint64_t n_ = 1;
  double theta_ = 0.0;
  double alpha_ = 1.0;  ///< 1 / (1 - theta)
  double zetan_ = 1.0;  ///< zeta(n, theta)
  double eta_ = 1.0;
};

/// Tunables for the Zipfian multi-tenant generator. Defaults model a
/// busy shared service: 5000 jobs drawn by a million-tenant population
/// with YCSB skew, short heavy-tailed runtimes, narrow allocations.
struct ZipfianMultiTenantConfig {
  std::uint32_t job_count = 5000;
  std::uint64_t tenant_count = 1'000'000;
  double theta = 0.99;                 ///< Zipfian skew, [0, 1)
  double mean_interarrival = 300.0;    ///< seconds (dense multi-tenant load)
  std::uint32_t max_procs = 128;
  double power_of_two_bias = 0.75;
  double mean_runtime = 2400.0;        ///< seconds, lognormal
  double runtime_cv = 1.6;
  double max_runtime = 18.0 * 3600.0;
  double min_runtime = 10.0;
  /// Estimate model shared with the SDSC generator.
  double overestimate_fraction = 0.92;
  double over_factor_lo = 1.1;
  double over_factor_hi = 5.0;
  double under_factor_lo = 0.35;
  double under_factor_hi = 0.95;
  std::uint64_t seed = 42;
};

/// Deterministic in the config (seed convention of generator.hpp). Jobs
/// in submission order, ids 1..N, first at t = 0, Job::tenant in
/// [1, tenant_count], QoS fields left zero.
[[nodiscard]] std::vector<Job> generate_zipfian_multi_tenant(
    const ZipfianMultiTenantConfig& config);

}  // namespace utilrisk::workload
