// Diurnal / flash-crowd arrival-rate modulation (registry method
// "flash"), composable over any base generator.
//
// The modulation is a deterministic time warp of the base arrival
// process: each inter-arrival gap is divided by the instantaneous rate
// multiplier at the (already warped) time of the previous arrival, so
// during a flash-crowd window the local arrival rate is `peak` times
// the base rate while submission order, job shapes and tenant ids are
// untouched. Because the warp consumes no randomness, "flash:base=X"
// with a fixed base seed is exactly as reproducible as X itself.
#pragma once

#include <vector>

#include "workload/job.hpp"

namespace utilrisk::workload {

/// Rate-modulation shape: an optional smooth diurnal swing plus a
/// rectangular flash-crowd window, one-shot or repeating.
struct FlashCrowdParams {
  /// Rate multiplier inside the crowd window (>= 1; 1 disables it).
  double peak = 8.0;
  /// Window start on the warped arrival clock, seconds.
  double start = 6.0 * 3600.0;
  /// Window length, seconds.
  double duration = 2.0 * 3600.0;
  /// Repeat the window every `period` seconds; 0 = one-shot. Must be
  /// > duration when repeating.
  double period = 0.0;
  /// Smooth daily swing in [0, 1): rate *= 1 + a * sin(2*pi*t / day).
  double diurnal_amplitude = 0.0;

  /// Throws std::invalid_argument on nonsensical knobs.
  void validate() const;
};

/// Instantaneous arrival-rate multiplier at warped time `t` (>= some
/// positive floor; exposed for the statistical tests).
[[nodiscard]] double rate_multiplier(const FlashCrowdParams& params,
                                     double t);

/// Warps `jobs`' submit times in place per the header comment. Jobs must
/// be in submission order; the first submit time is preserved.
void apply_rate_modulation(std::vector<Job>& jobs,
                           const FlashCrowdParams& params);

}  // namespace utilrisk::workload
