#include "workload/zipfian.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/distributions.hpp"

namespace utilrisk::workload {

namespace {

/// Exact zeta(n, theta) up to this many terms; the remainder uses the
/// integral approximation (error < 1 ulp of the sum at that scale).
constexpr std::uint64_t kExactZetaTerms = 10'000'000;

double zeta(std::uint64_t n, double theta) {
  const std::uint64_t exact = std::min(n, kExactZetaTerms);
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= exact; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  if (n > exact) {
    // Integral tail: sum_{i=k+1..n} i^-theta ~ (n^(1-t) - k^(1-t))/(1-t).
    const double k = static_cast<double>(exact);
    const double upper = static_cast<double>(n);
    sum += (std::pow(upper, 1.0 - theta) - std::pow(k, 1.0 - theta)) /
           (1.0 - theta);
  }
  return sum;
}

}  // namespace

ZipfianSampler::ZipfianSampler(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  if (n == 0) {
    throw std::invalid_argument("ZipfianSampler: n == 0");
  }
  if (theta < 0.0 || theta >= 1.0) {
    throw std::invalid_argument(
        "ZipfianSampler: theta outside [0, 1) (YCSB zipfian constant)");
  }
  alpha_ = 1.0 / (1.0 - theta_);
  zetan_ = zeta(n_, theta_);
  const double zeta2 = zeta(std::min<std::uint64_t>(n_, 2), theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

std::uint64_t ZipfianSampler::sample(sim::Rng& rng) const {
  // Gray et al.'s closed-form inversion as used by YCSB: two explicit
  // head ranks, then the analytic tail.
  const double u = rng.uniform01();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (n_ > 1 && uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const double rank = static_cast<double>(n_) *
                      std::pow(eta_ * u - eta_ + 1.0, alpha_);
  const auto clamped = static_cast<std::uint64_t>(rank);
  return std::min(clamped, n_ - 1);
}

std::vector<Job> generate_zipfian_multi_tenant(
    const ZipfianMultiTenantConfig& cfg) {
  if (cfg.job_count == 0) {
    throw std::invalid_argument("generate_zipfian_multi_tenant: job_count == 0");
  }
  if (cfg.max_procs == 0) {
    throw std::invalid_argument("generate_zipfian_multi_tenant: max_procs == 0");
  }
  if (cfg.mean_interarrival <= 0.0 || cfg.mean_runtime <= 0.0) {
    throw std::invalid_argument(
        "generate_zipfian_multi_tenant: means must be positive");
  }
  if (cfg.overestimate_fraction < 0.0 || cfg.overestimate_fraction > 1.0) {
    throw std::invalid_argument(
        "generate_zipfian_multi_tenant: overestimate_fraction outside [0,1]");
  }

  const ZipfianSampler tenants_dist(cfg.tenant_count, cfg.theta);

  sim::Rng rng(cfg.seed);
  // Independent per-attribute streams (seed convention, generator.hpp).
  sim::Rng arrivals = rng.split();
  sim::Rng tenants = rng.split();
  sim::Rng sizes = rng.split();
  sim::Rng runtimes = rng.split();
  sim::Rng estimates = rng.split();

  std::vector<Job> jobs;
  jobs.reserve(cfg.job_count);
  double clock = 0.0;
  for (std::uint32_t i = 0; i < cfg.job_count; ++i) {
    Job job;
    job.id = i + 1;
    job.submit_time = clock;
    job.tenant =
        static_cast<std::uint32_t>(tenants_dist.sample(tenants) + 1);
    job.procs = sim::sample_job_size(sizes, cfg.max_procs,
                                     cfg.power_of_two_bias);
    job.actual_runtime = std::clamp(
        sim::sample_lognormal_mean_cv(runtimes, cfg.mean_runtime,
                                      cfg.runtime_cv),
        cfg.min_runtime, cfg.max_runtime);
    if (estimates.bernoulli(cfg.overestimate_fraction)) {
      const double factor =
          estimates.uniform(cfg.over_factor_lo, cfg.over_factor_hi);
      job.estimated_runtime =
          std::min(job.actual_runtime * factor, cfg.max_runtime);
      job.estimated_runtime =
          std::max(job.estimated_runtime, job.actual_runtime);
    } else {
      const double factor =
          estimates.uniform(cfg.under_factor_lo, cfg.under_factor_hi);
      job.estimated_runtime = std::max(1.0, job.actual_runtime * factor);
    }
    jobs.push_back(job);
    clock += sim::sample_exponential(arrivals, cfg.mean_interarrival);
  }
  return jobs;
}

}  // namespace utilrisk::workload
