// Standard Workload Format (SWF) reader/writer.
//
// The paper draws its workload from the SDSC SP2 trace v2.2 in Feitelson's
// Parallel Workloads Archive, which is distributed in SWF. When the real
// trace file is available it can be loaded with `load_swf`; otherwise the
// synthetic generator (synthetic_sdsc.hpp) produces a statistically matched
// substitute. Round-tripping through `save_swf` lets tests and users
// inspect generated workloads with standard SWF tooling.
//
// SWF: one job per line, 18 whitespace-separated fields; lines starting
// with ';' are header comments. Field indices (1-based, per the archive
// definition):
//   1 job number, 2 submit time, 3 wait time, 4 run time,
//   5 allocated procs, 6 avg cpu time, 7 used memory,
//   8 requested procs, 9 requested time (estimate), 10 requested memory,
//   11 status, 12 user id, 13 group id, 14 executable, 15 queue,
//   16 partition, 17 preceding job, 18 think time.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/job.hpp"

namespace utilrisk::workload {

/// Parse diagnostics for a single skipped line.
struct SwfParseIssue {
  std::size_t line_number = 0;
  std::string reason;
};

/// Result of parsing an SWF stream.
struct SwfParseResult {
  std::vector<Job> jobs;
  std::vector<std::string> header;     ///< ';'-prefixed comment lines
  std::vector<SwfParseIssue> skipped;  ///< malformed / filtered lines
};

/// Options controlling SWF -> Job conversion.
struct SwfLoadOptions {
  /// Drop jobs whose status is not "completed" (1). The archive marks
  /// cancelled/failed jobs with other codes; the paper simulates completed
  /// work only.
  bool completed_only = true;
  /// Drop jobs with non-positive runtime or procs (present in raw traces).
  bool drop_degenerate = true;
  /// Keep only the last N jobs (0 = keep all). The paper uses the last
  /// 5000 jobs of SDSC SP2.
  std::size_t keep_last = 0;
  /// Rebase submit times so the first kept job arrives at t = 0.
  bool rebase_submit_times = true;
};

/// Parses SWF from a stream. Never throws on malformed lines; they are
/// reported in `skipped`. Throws std::ios_base::failure only on stream
/// errors other than EOF.
[[nodiscard]] SwfParseResult parse_swf(std::istream& in,
                                       const SwfLoadOptions& options = {});

/// Convenience: parse a file on disk. Throws std::runtime_error if the
/// file cannot be opened.
[[nodiscard]] SwfParseResult load_swf(const std::string& path,
                                      const SwfLoadOptions& options = {});

/// Writes jobs as SWF (status=1, unknown fields as -1). QoS terms are not
/// representable in SWF and are omitted; `save_qos_sidecar` keeps them.
void save_swf(std::ostream& out, const std::vector<Job>& jobs,
              const std::vector<std::string>& header = {});

/// Writes the SLA terms SWF cannot carry as a CSV sidecar
/// (id,deadline_duration,budget,penalty_rate,urgency) so a generated
/// workload can be archived as SWF + sidecar and reloaded exactly.
void save_qos_sidecar(std::ostream& out, const std::vector<Job>& jobs);

/// Merges a sidecar produced by save_qos_sidecar back onto `jobs`,
/// matching by job id. Throws std::runtime_error on malformed rows or ids
/// that are missing from `jobs`; jobs without a sidecar row keep their
/// current QoS fields. Returns the number of jobs updated.
std::size_t load_qos_sidecar(std::istream& in, std::vector<Job>& jobs);

}  // namespace utilrisk::workload
