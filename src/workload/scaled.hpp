// Cluster-scaled variants of the synthetic SDSC SP2 workload.
//
// The paper's machine is 128 nodes; the ROADMAP targets 10k-100k-node
// clusters. Scaling the machine without scaling the arrival process just
// leaves the extra nodes idle, so this helper densifies arrivals in
// proportion to the node count — the offered load *per node* stays at the
// SDSC subset's published level while the absolute job pressure (and the
// kernel's pending-event population) grows with the cluster.
#pragma once

#include <cstdint>

#include "workload/synthetic_sdsc.hpp"

namespace utilrisk::workload {

/// Synthetic-SDSC config for a cluster of `node_count` nodes carrying the
/// same per-node offered load as the 128-node original:
///   mean_interarrival = 1969 s * 128 / node_count.
/// Job widths keep the trace's distribution (max_procs stays 128 unless
/// the cluster itself is narrower), so a 100k-node run models many
/// concurrent trace-like users rather than implausibly wide jobs.
/// Deterministic in (node_count, job_count, seed). Throws
/// std::invalid_argument when node_count is zero.
[[nodiscard]] SyntheticSdscConfig scaled_sdsc_config(
    std::uint32_t node_count, std::uint32_t job_count,
    std::uint64_t seed = 42);

}  // namespace utilrisk::workload
