#include "workload/generator.hpp"

#include <charconv>
#include <cstdlib>
#include <stdexcept>
#include <system_error>

#include "workload/checkpoint_restart.hpp"
#include "workload/flash_crowd.hpp"
#include "workload/mix_shift.hpp"
#include "workload/swf.hpp"
#include "workload/synthetic_lublin.hpp"
#include "workload/synthetic_sdsc.hpp"
#include "workload/zipfian.hpp"

namespace utilrisk::workload {

namespace {

[[noreturn]] void bad_spec(const std::string& what) {
  throw std::invalid_argument("workload spec: " + what);
}

double parse_double(const std::string& key, const std::string& value) {
  const char* begin = value.c_str();
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(begin, &end);
  if (end != begin + value.size() || value.empty() || errno == ERANGE) {
    bad_spec("parameter '" + key + "' is not a number: '" + value + "'");
  }
  return parsed;
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  std::uint64_t parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), parsed);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    bad_spec("parameter '" + key + "' is not an unsigned integer: '" + value +
             "'");
  }
  return parsed;
}

}  // namespace

GeneratorSpec GeneratorSpec::parse(const std::string& text) {
  GeneratorSpec spec;
  const auto colon = text.find(':');
  spec.method = text.substr(0, colon);
  if (spec.method.empty()) bad_spec("empty method name in '" + text + "'");
  if (colon == std::string::npos) return spec;

  std::size_t pos = colon + 1;
  while (pos <= text.size()) {
    const auto comma = text.find(',', pos);
    const std::string item =
        text.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      bad_spec("parameter '" + item + "' has no '=' in '" + text + "'");
    }
    std::string key = item.substr(0, eq);
    if (key.empty()) bad_spec("empty parameter key in '" + text + "'");
    if (spec.find(key) != nullptr) {
      bad_spec("parameter '" + key + "' repeats in '" + text + "'");
    }
    spec.params.emplace_back(std::move(key), item.substr(eq + 1));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return spec;
}

std::string GeneratorSpec::to_string() const {
  std::string out = method;
  char sep = ':';
  for (const auto& [key, value] : params) {
    out += sep;
    out += key;
    out += '=';
    out += value;
    sep = ',';
  }
  return out;
}

const std::string* GeneratorSpec::find(const std::string& key) const {
  for (const auto& [k, v] : params) {
    if (k == key) return &v;
  }
  return nullptr;
}

void GeneratorSpec::set_default(const std::string& key,
                                const std::string& value) {
  if (find(key) == nullptr) params.emplace_back(key, value);
}

double GeneratorSpec::get_double(const std::string& key,
                                 double fallback) const {
  const std::string* value = find(key);
  return value ? parse_double(key, *value) : fallback;
}

std::uint64_t GeneratorSpec::get_u64(const std::string& key,
                                     std::uint64_t fallback) const {
  const std::string* value = find(key);
  return value ? parse_u64(key, *value) : fallback;
}

std::uint32_t GeneratorSpec::get_u32(const std::string& key,
                                     std::uint32_t fallback) const {
  const std::string* value = find(key);
  if (value == nullptr) return fallback;
  const std::uint64_t wide = parse_u64(key, *value);
  if (wide > 0xFFFFFFFFULL) {
    bad_spec("parameter '" + key + "' exceeds 32 bits: '" + *value + "'");
  }
  return static_cast<std::uint32_t>(wide);
}

std::string GeneratorSpec::get_string(const std::string& key,
                                      const std::string& fallback) const {
  const std::string* value = find(key);
  return value ? *value : fallback;
}

void GeneratorSpec::require_known(const std::vector<std::string>& known,
                                  const std::string& allow_dotted_prefix)
    const {
  const std::string dotted =
      allow_dotted_prefix.empty() ? "" : allow_dotted_prefix + ".";
  for (const auto& [key, value] : params) {
    bool ok = false;
    for (const auto& k : known) {
      if (key == k) {
        ok = true;
        break;
      }
    }
    if (!ok && !dotted.empty() && key.size() > dotted.size() &&
        key.compare(0, dotted.size(), dotted) == 0) {
      ok = true;
    }
    if (!ok) {
      bad_spec("unknown parameter '" + key + "' for method '" + method + "'");
    }
  }
}

std::string format_double(double value) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc{}) bad_spec("unformattable double");
  return std::string(buf, ptr);
}

namespace {

/// Common base for methods that materialise the whole trace in load()
/// and stream it out of get_next(). Bit-identity with the direct
/// generator calls falls out for free.
class MaterializedGenerator : public WorkloadGenerator {
 public:
  std::optional<Job> get_next() override {
    if (next_ >= jobs_.size()) return std::nullopt;
    return jobs_[next_++];
  }

 protected:
  std::vector<Job> jobs_;
  std::size_t next_ = 0;
};

class SdscGenerator final : public MaterializedGenerator {
 public:
  const char* method() const override { return "sdsc"; }

  void load(const GeneratorSpec& spec) override {
    spec.require_known(
        {"jobs", "max_procs", "mean_interarrival", "mean_runtime",
         "runtime_cv", "max_runtime", "min_runtime", "power_of_two_bias",
         "mean_procs_target", "overestimate_fraction", "over_factor_lo",
         "over_factor_hi", "under_factor_lo", "under_factor_hi",
         "queue_limit_mode_fraction", "diurnal_amplitude", "seed"});
    SyntheticSdscConfig cfg;
    cfg.job_count = spec.get_u32("jobs", cfg.job_count);
    cfg.max_procs = spec.get_u32("max_procs", cfg.max_procs);
    cfg.mean_interarrival =
        spec.get_double("mean_interarrival", cfg.mean_interarrival);
    cfg.mean_runtime = spec.get_double("mean_runtime", cfg.mean_runtime);
    cfg.runtime_cv = spec.get_double("runtime_cv", cfg.runtime_cv);
    cfg.max_runtime = spec.get_double("max_runtime", cfg.max_runtime);
    cfg.min_runtime = spec.get_double("min_runtime", cfg.min_runtime);
    cfg.power_of_two_bias =
        spec.get_double("power_of_two_bias", cfg.power_of_two_bias);
    cfg.mean_procs_target =
        spec.get_double("mean_procs_target", cfg.mean_procs_target);
    cfg.overestimate_fraction =
        spec.get_double("overestimate_fraction", cfg.overestimate_fraction);
    cfg.over_factor_lo = spec.get_double("over_factor_lo", cfg.over_factor_lo);
    cfg.over_factor_hi = spec.get_double("over_factor_hi", cfg.over_factor_hi);
    cfg.under_factor_lo =
        spec.get_double("under_factor_lo", cfg.under_factor_lo);
    cfg.under_factor_hi =
        spec.get_double("under_factor_hi", cfg.under_factor_hi);
    cfg.queue_limit_mode_fraction = spec.get_double(
        "queue_limit_mode_fraction", cfg.queue_limit_mode_fraction);
    cfg.diurnal_amplitude =
        spec.get_double("diurnal_amplitude", cfg.diurnal_amplitude);
    cfg.seed = spec.get_u64("seed", cfg.seed);
    jobs_ = generate_synthetic_sdsc(cfg);
    next_ = 0;
  }
};

class LublinGenerator final : public MaterializedGenerator {
 public:
  const char* method() const override { return "lublin"; }

  void load(const GeneratorSpec& spec) override {
    spec.require_known(
        {"jobs", "max_procs", "serial_fraction", "power_of_two_fraction",
         "mean_interarrival", "arrival_shape", "short_shape", "short_scale",
         "long_shape", "long_scale", "p_short_serial", "p_short_wide",
         "max_runtime", "min_runtime", "overestimate_fraction",
         "over_factor_lo", "over_factor_hi", "under_factor_lo",
         "under_factor_hi", "seed"});
    SyntheticLublinConfig cfg;
    cfg.job_count = spec.get_u32("jobs", cfg.job_count);
    cfg.max_procs = spec.get_u32("max_procs", cfg.max_procs);
    cfg.serial_fraction =
        spec.get_double("serial_fraction", cfg.serial_fraction);
    cfg.power_of_two_fraction =
        spec.get_double("power_of_two_fraction", cfg.power_of_two_fraction);
    cfg.mean_interarrival =
        spec.get_double("mean_interarrival", cfg.mean_interarrival);
    cfg.arrival_shape = spec.get_double("arrival_shape", cfg.arrival_shape);
    cfg.short_shape = spec.get_double("short_shape", cfg.short_shape);
    cfg.short_scale = spec.get_double("short_scale", cfg.short_scale);
    cfg.long_shape = spec.get_double("long_shape", cfg.long_shape);
    cfg.long_scale = spec.get_double("long_scale", cfg.long_scale);
    cfg.p_short_serial = spec.get_double("p_short_serial", cfg.p_short_serial);
    cfg.p_short_wide = spec.get_double("p_short_wide", cfg.p_short_wide);
    cfg.max_runtime = spec.get_double("max_runtime", cfg.max_runtime);
    cfg.min_runtime = spec.get_double("min_runtime", cfg.min_runtime);
    cfg.overestimate_fraction =
        spec.get_double("overestimate_fraction", cfg.overestimate_fraction);
    cfg.over_factor_lo = spec.get_double("over_factor_lo", cfg.over_factor_lo);
    cfg.over_factor_hi = spec.get_double("over_factor_hi", cfg.over_factor_hi);
    cfg.under_factor_lo =
        spec.get_double("under_factor_lo", cfg.under_factor_lo);
    cfg.under_factor_hi =
        spec.get_double("under_factor_hi", cfg.under_factor_hi);
    cfg.seed = spec.get_u64("seed", cfg.seed);
    jobs_ = generate_synthetic_lublin(cfg);
    next_ = 0;
  }
};

class SwfGenerator final : public MaterializedGenerator {
 public:
  const char* method() const override { return "swf"; }

  void load(const GeneratorSpec& spec) override {
    // `seed` is accepted (the harness injects it uniformly) but a trace
    // replay has no entropy to seed.
    spec.require_known({"path", "jobs", "completed_only", "drop_degenerate",
                        "rebase", "seed"});
    const std::string path = spec.get_string("path", "");
    if (path.empty()) bad_spec("method 'swf' requires path=<file.swf>");
    SwfLoadOptions options;
    options.completed_only = spec.get_u32("completed_only", 1) != 0;
    options.drop_degenerate = spec.get_u32("drop_degenerate", 1) != 0;
    options.keep_last = spec.get_u64("jobs", 0);
    options.rebase_submit_times = spec.get_u32("rebase", 1) != 0;
    jobs_ = load_swf(path, options).jobs;
    next_ = 0;
  }
};

class ZipfGenerator final : public MaterializedGenerator {
 public:
  const char* method() const override { return "zipf"; }

  void load(const GeneratorSpec& spec) override {
    spec.require_known(
        {"jobs", "tenants", "theta", "mean_interarrival", "max_procs",
         "power_of_two_bias", "mean_runtime", "runtime_cv", "max_runtime",
         "min_runtime", "overestimate_fraction", "over_factor_lo",
         "over_factor_hi", "under_factor_lo", "under_factor_hi", "seed"});
    ZipfianMultiTenantConfig cfg;
    cfg.job_count = spec.get_u32("jobs", cfg.job_count);
    cfg.tenant_count = spec.get_u64("tenants", cfg.tenant_count);
    cfg.theta = spec.get_double("theta", cfg.theta);
    cfg.mean_interarrival =
        spec.get_double("mean_interarrival", cfg.mean_interarrival);
    cfg.max_procs = spec.get_u32("max_procs", cfg.max_procs);
    cfg.power_of_two_bias =
        spec.get_double("power_of_two_bias", cfg.power_of_two_bias);
    cfg.mean_runtime = spec.get_double("mean_runtime", cfg.mean_runtime);
    cfg.runtime_cv = spec.get_double("runtime_cv", cfg.runtime_cv);
    cfg.max_runtime = spec.get_double("max_runtime", cfg.max_runtime);
    cfg.min_runtime = spec.get_double("min_runtime", cfg.min_runtime);
    cfg.overestimate_fraction =
        spec.get_double("overestimate_fraction", cfg.overestimate_fraction);
    cfg.over_factor_lo = spec.get_double("over_factor_lo", cfg.over_factor_lo);
    cfg.over_factor_hi = spec.get_double("over_factor_hi", cfg.over_factor_hi);
    cfg.under_factor_lo =
        spec.get_double("under_factor_lo", cfg.under_factor_lo);
    cfg.under_factor_hi =
        spec.get_double("under_factor_hi", cfg.under_factor_hi);
    cfg.seed = spec.get_u64("seed", cfg.seed);
    jobs_ = generate_zipfian_multi_tenant(cfg);
    next_ = 0;
  }
};

class DalyGenerator final : public MaterializedGenerator {
 public:
  const char* method() const override { return "daly"; }

  void load(const GeneratorSpec& spec) override {
    spec.require_known({"jobs", "max_procs", "power_of_two_bias",
                        "mean_interarrival", "mean_solve", "solve_cv",
                        "min_solve", "max_solve", "checkpoint_write",
                        "interval", "mtti", "pad_lo", "pad_hi", "seed"});
    DalyCheckpointConfig cfg;
    cfg.job_count = spec.get_u32("jobs", cfg.job_count);
    cfg.max_procs = spec.get_u32("max_procs", cfg.max_procs);
    cfg.power_of_two_bias =
        spec.get_double("power_of_two_bias", cfg.power_of_two_bias);
    cfg.mean_interarrival =
        spec.get_double("mean_interarrival", cfg.mean_interarrival);
    cfg.mean_solve = spec.get_double("mean_solve", cfg.mean_solve);
    cfg.solve_cv = spec.get_double("solve_cv", cfg.solve_cv);
    cfg.min_solve = spec.get_double("min_solve", cfg.min_solve);
    cfg.max_solve = spec.get_double("max_solve", cfg.max_solve);
    cfg.checkpoint_write_seconds =
        spec.get_double("checkpoint_write", cfg.checkpoint_write_seconds);
    cfg.checkpoint_interval =
        spec.get_double("interval", cfg.checkpoint_interval);
    cfg.mtti_seconds = spec.get_double("mtti", cfg.mtti_seconds);
    cfg.estimate_pad_lo = spec.get_double("pad_lo", cfg.estimate_pad_lo);
    cfg.estimate_pad_hi = spec.get_double("pad_hi", cfg.estimate_pad_hi);
    cfg.seed = spec.get_u64("seed", cfg.seed);
    jobs_ = generate_daly_checkpoint(cfg);
    next_ = 0;
  }
};

class FlashGenerator final : public MaterializedGenerator {
 public:
  const char* method() const override { return "flash"; }

  void load(const GeneratorSpec& spec) override {
    spec.require_known({"base", "peak", "start", "duration", "period",
                        "diurnal", "jobs", "seed"},
                       /*allow_dotted_prefix=*/"base");
    GeneratorSpec inner;
    inner.method = spec.get_string("base", "sdsc");
    for (const auto& [key, value] : spec.params) {
      if (key.size() > 5 && key.compare(0, 5, "base.") == 0) {
        inner.params.emplace_back(key.substr(5), value);
      }
    }
    // Harness-level jobs/seed flow through to the base generator; an
    // explicit base.jobs / base.seed wins.
    if (const std::string* jobs = spec.find("jobs")) {
      inner.set_default("jobs", *jobs);
    }
    if (const std::string* seed = spec.find("seed")) {
      inner.set_default("seed", *seed);
    }
    jobs_ = generate_jobs(inner);

    FlashCrowdParams params;
    params.peak = spec.get_double("peak", params.peak);
    params.start = spec.get_double("start", params.start);
    params.duration = spec.get_double("duration", params.duration);
    params.period = spec.get_double("period", params.period);
    params.diurnal_amplitude =
        spec.get_double("diurnal", params.diurnal_amplitude);
    apply_rate_modulation(jobs_, params);
    next_ = 0;
  }
};

class MixShiftGenerator final : public MaterializedGenerator {
 public:
  const char* method() const override { return "mixshift"; }

  void load(const GeneratorSpec& spec) override {
    // Two dotted forwarding prefixes (a., b.) — require_known() supports
    // only one, so validate the key set by hand.
    for (const auto& [key, value] : spec.params) {
      const bool plain = key == "a" || key == "b" || key == "t" ||
                         key == "jobs" || key == "seed";
      const bool dotted =
          key.size() > 2 && (key.compare(0, 2, "a.") == 0 ||
                             key.compare(0, 2, "b.") == 0);
      if (!plain && !dotted) {
        bad_spec("unknown parameter '" + key + "' for method 'mixshift'");
      }
    }
    GeneratorSpec inner_a;
    GeneratorSpec inner_b;
    inner_a.method = spec.get_string("a", "sdsc");
    inner_b.method = spec.get_string("b", "zipf");
    for (const auto& [key, value] : spec.params) {
      if (key.size() > 2 && key.compare(0, 2, "a.") == 0) {
        inner_a.params.emplace_back(key.substr(2), value);
      } else if (key.size() > 2 && key.compare(0, 2, "b.") == 0) {
        inner_b.params.emplace_back(key.substr(2), value);
      }
    }
    // Harness-level jobs/seed flow through to both phases; an explicit
    // a.jobs / b.seed etc. wins. `jobs` also caps the spliced total so
    // the harness's job-count default means what it says.
    if (const std::string* jobs = spec.find("jobs")) {
      inner_a.set_default("jobs", *jobs);
      inner_b.set_default("jobs", *jobs);
    }
    if (const std::string* seed = spec.find("seed")) {
      inner_a.set_default("seed", *seed);
      inner_b.set_default("seed", *seed);
    }
    const double at = spec.get_double("t", 6.0 * 3600.0);
    jobs_ = splice_mix_shift(generate_jobs(inner_a), generate_jobs(inner_b),
                             at, spec.get_u64("jobs", 0));
    next_ = 0;
  }
};

std::vector<GeneratorMethod>& registry_storage() {
  static std::vector<GeneratorMethod> methods;
  return methods;
}

void append_method(GeneratorMethod method) {
  if (method.name.empty()) bad_spec("cannot register an empty method name");
  if (!method.create) {
    bad_spec("method '" + method.name + "' registered without a factory");
  }
  for (const auto& existing : registry_storage()) {
    if (existing.name == method.name) {
      bad_spec("method '" + method.name + "' is already registered");
    }
  }
  registry_storage().push_back(std::move(method));
}

template <typename G>
GeneratorMethod builtin(std::string name, std::string summary,
                        std::vector<GeneratorParamDoc> params) {
  GeneratorMethod method;
  method.name = std::move(name);
  method.summary = std::move(summary);
  method.params = std::move(params);
  method.create = [] { return std::make_unique<G>(); };
  return method;
}

void register_builtins() {
  append_method(builtin<SdscGenerator>(
      "sdsc", "synthetic SDSC SP2 batch trace (paper's primary workload)",
      {{"jobs", "job count (default 5000)"},
       {"max_procs", "cluster width (default 128)"},
       {"mean_interarrival", "mean inter-arrival seconds (default 1969)"},
       {"mean_runtime", "mean runtime seconds (default 8671)"},
       {"runtime_cv", "runtime coefficient of variation (default 1.8)"},
       {"diurnal_amplitude", "daily arrival swing in [0,1) (default 0.5)"},
       {"seed", "RNG seed (default 42)"}}));
  append_method(builtin<LublinGenerator>(
      "lublin", "Lublin-Feitelson hyper-gamma robustness workload",
      {{"jobs", "job count (default 5000)"},
       {"max_procs", "cluster width (default 128)"},
       {"serial_fraction", "fraction of serial jobs (default 0.24)"},
       {"mean_interarrival", "mean inter-arrival seconds (default 1969)"},
       {"arrival_shape", "gamma arrival shape, <1 bursty (default 0.6)"},
       {"seed", "RNG seed (default 1337)"}}));
  append_method(builtin<SwfGenerator>(
      "swf", "replay a Standard Workload Format trace file",
      {{"path", "SWF file path (required)"},
       {"jobs", "keep only the last N jobs (default 0 = all)"},
       {"completed_only", "drop non-completed jobs, 0/1 (default 1)"},
       {"drop_degenerate", "drop zero-runtime/procs jobs, 0/1 (default 1)"},
       {"rebase", "rebase first submit to t=0, 0/1 (default 1)"},
       {"seed", "accepted for uniformity; a replay has no entropy"}}));
  append_method(builtin<ZipfGenerator>(
      "zipf", "Zipfian-skewed multi-tenant service traffic (stamps tenant id)",
      {{"jobs", "job count (default 5000)"},
       {"tenants", "tenant population size (default 1000000)"},
       {"theta", "Zipfian skew in [0,1); 0 uniform, 0.99 YCSB (default 0.99)"},
       {"mean_interarrival", "mean inter-arrival seconds (default 300)"},
       {"mean_runtime", "mean runtime seconds (default 2400)"},
       {"seed", "RNG seed (default 42)"}}));
  append_method(builtin<FlashGenerator>(
      "flash", "diurnal/flash-crowd rate modulation over any base method",
      {{"base", "inner method name (default sdsc); base.K=V forwards K=V"},
       {"peak", "rate multiplier inside the crowd window (default 8)"},
       {"start", "window start seconds (default 21600)"},
       {"duration", "window length seconds (default 7200)"},
       {"period", "repeat every N seconds; 0 one-shot (default 0)"},
       {"diurnal", "smooth daily swing in [0,1) (default 0)"},
       {"seed", "forwarded to the base generator"}}));
  append_method(builtin<MixShiftGenerator>(
      "mixshift", "switch the traffic mix from method a to method b at time t",
      {{"a", "pre-switch method name (default sdsc); a.K=V forwards K=V"},
       {"b", "post-switch method name (default zipf); b.K=V forwards K=V"},
       {"t", "virtual switch time in seconds (default 21600)"},
       {"jobs", "total job cap after the splice; also each phase's default"},
       {"seed", "forwarded to both phases (a.seed / b.seed override)"}}));
  append_method(builtin<DalyGenerator>(
      "daly", "checkpoint-restart jobs with Daly-interval dump overhead",
      {{"jobs", "job count (default 2000)"},
       {"mean_solve", "mean failure-free solve seconds (default 21600)"},
       {"checkpoint_write", "checkpoint write cost delta seconds (default "
                            "120)"},
       {"interval", "checkpoint interval tau seconds; 0 = Daly optimum "
                    "(default 0)"},
       {"mtti", "mean time to interrupt seconds (default 86400)"},
       {"seed", "RNG seed (default 42)"}}));
}

void ensure_builtins() {
  static const bool once = [] {
    register_builtins();
    return true;
  }();
  (void)once;
}

}  // namespace

void register_generator(GeneratorMethod method) {
  ensure_builtins();
  append_method(std::move(method));
}

const std::vector<GeneratorMethod>& registered_generators() {
  ensure_builtins();
  return registry_storage();
}

std::unique_ptr<WorkloadGenerator> make_generator(const GeneratorSpec& spec) {
  for (const auto& method : registered_generators()) {
    if (method.name == spec.method) {
      auto generator = method.create();
      generator->load(spec);
      return generator;
    }
  }
  bad_spec("unknown method '" + spec.method + "' (see `utilrisk trace --list`)");
}

std::vector<Job> generate_jobs(const GeneratorSpec& spec) {
  auto generator = make_generator(spec);
  std::vector<Job> jobs;
  while (auto job = generator->get_next()) jobs.push_back(*job);
  return jobs;
}

std::vector<Job> generate_jobs(const std::string& spec_text) {
  return generate_jobs(GeneratorSpec::parse(spec_text));
}

std::string spec_for(const SyntheticSdscConfig& c) {
  GeneratorSpec spec;
  spec.method = "sdsc";
  spec.params = {
      {"jobs", std::to_string(c.job_count)},
      {"max_procs", std::to_string(c.max_procs)},
      {"mean_interarrival", format_double(c.mean_interarrival)},
      {"mean_runtime", format_double(c.mean_runtime)},
      {"runtime_cv", format_double(c.runtime_cv)},
      {"max_runtime", format_double(c.max_runtime)},
      {"min_runtime", format_double(c.min_runtime)},
      {"power_of_two_bias", format_double(c.power_of_two_bias)},
      {"mean_procs_target", format_double(c.mean_procs_target)},
      {"overestimate_fraction", format_double(c.overestimate_fraction)},
      {"over_factor_lo", format_double(c.over_factor_lo)},
      {"over_factor_hi", format_double(c.over_factor_hi)},
      {"under_factor_lo", format_double(c.under_factor_lo)},
      {"under_factor_hi", format_double(c.under_factor_hi)},
      {"queue_limit_mode_fraction",
       format_double(c.queue_limit_mode_fraction)},
      {"diurnal_amplitude", format_double(c.diurnal_amplitude)},
      {"seed", std::to_string(c.seed)},
  };
  return spec.to_string();
}

std::string spec_for(const SyntheticLublinConfig& c) {
  GeneratorSpec spec;
  spec.method = "lublin";
  spec.params = {
      {"jobs", std::to_string(c.job_count)},
      {"max_procs", std::to_string(c.max_procs)},
      {"serial_fraction", format_double(c.serial_fraction)},
      {"power_of_two_fraction", format_double(c.power_of_two_fraction)},
      {"mean_interarrival", format_double(c.mean_interarrival)},
      {"arrival_shape", format_double(c.arrival_shape)},
      {"short_shape", format_double(c.short_shape)},
      {"short_scale", format_double(c.short_scale)},
      {"long_shape", format_double(c.long_shape)},
      {"long_scale", format_double(c.long_scale)},
      {"p_short_serial", format_double(c.p_short_serial)},
      {"p_short_wide", format_double(c.p_short_wide)},
      {"max_runtime", format_double(c.max_runtime)},
      {"min_runtime", format_double(c.min_runtime)},
      {"overestimate_fraction", format_double(c.overestimate_fraction)},
      {"over_factor_lo", format_double(c.over_factor_lo)},
      {"over_factor_hi", format_double(c.over_factor_hi)},
      {"under_factor_lo", format_double(c.under_factor_lo)},
      {"under_factor_hi", format_double(c.under_factor_hi)},
      {"seed", std::to_string(c.seed)},
  };
  return spec.to_string();
}

}  // namespace utilrisk::workload
