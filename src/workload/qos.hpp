// QoS (deadline / budget / penalty) synthesis — the paper's §5.3
// methodology after Irwin et al. [12].
//
// SLA parameters are unavailable in real traces, so the paper derives them
// from two urgency classes:
//   high urgency: low  deadline factor d/tr, high budget factor b/f(tr),
//                 high penalty factor pr/g(tr)
//   low  urgency: high deadline factor,      low budget factor,
//                 low penalty factor
// Factors are normally distributed within each class. The knobs (Table VI):
//   - percentage of high-urgency jobs (job mix)
//   - high:low ratio  = (mean of the class with the higher value)
//                       / (mean of the class with the lower value)
//   - low-value mean  = mean of the class with the *lower* value
//   - bias            = longer-than-average jobs get their value divided by
//                       the bias; shorter-than-average jobs multiplied
//                       (counteracts "everything scales with runtime")
//
// Concrete f and g (left open in the paper; see DESIGN.md §3):
//   f(tr) = tr * base_price           (budget scales with base cost)
//   g(tr) = tr * base_price / 3600    (penalty rate per hour of runtime;
//           a delay of ~3600 * budget_factor / penalty_factor seconds
//           erodes the whole budget, i.e. penalties bite at hour scale)
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"
#include "workload/job.hpp"

namespace utilrisk::workload {

/// Per-parameter generator knobs (one instance each for deadline, budget,
/// penalty).
struct QosParameterConfig {
  /// Mean factor of the class holding the *low* values of this parameter.
  double low_value_mean = 4.0;
  /// Ratio of high-value-class mean to low-value-class mean (>= 1).
  double high_low_ratio = 4.0;
  /// Runtime bias (>= 1); 1 disables the bias.
  double bias = 2.0;
  /// Spread: stddev = sigma_fraction * class mean.
  double sigma_fraction = 0.25;
};

struct QosConfig {
  /// Percentage of high-urgency jobs, 0..100 (Table VI job-mix knob).
  double high_urgency_percent = 20.0;
  QosParameterConfig deadline;
  QosParameterConfig budget;
  QosParameterConfig penalty;
  /// Base price ($/processor-second) anchoring f and g.
  double base_price = 1.0;
  /// Floor on the deadline factor so every job is in principle completable
  /// (d >= deadline_factor_floor * tr).
  double deadline_factor_floor = 1.05;
  std::uint64_t seed = 4242;
};

/// Assigns urgency classes and fills deadline_duration / budget /
/// penalty_rate on every job, in place. Deterministic in (config, job
/// order). The mean runtime used by the bias is computed over `jobs`.
/// Ends by running validate_sla_terms on the result.
void assign_qos(std::vector<Job>& jobs, const QosConfig& config);

/// Validates synthesised SLA terms: every job needs a finite positive
/// deadline_duration, finite budget >= 0 and finite penalty_rate >= 0 —
/// the preconditions of eqns 9-10 (a negative penalty rate would reward
/// lateness; a negative budget would invert the profitability sign).
/// Throws std::invalid_argument naming the first offending job. Called by
/// assign_qos and the QoS sidecar loader so invalid terms are rejected at
/// synthesis time, not discovered as drifting risk figures.
void validate_sla_terms(const std::vector<Job>& jobs);

/// Class means actually used for a parameter, given which class holds the
/// high values. Exposed for tests.
struct ClassMeans {
  double high_urgency_mean = 0.0;
  double low_urgency_mean = 0.0;
};

/// Deadline: low values belong to HIGH urgency (tight deadlines).
[[nodiscard]] ClassMeans deadline_class_means(const QosParameterConfig& p);
/// Budget / penalty: low values belong to LOW urgency.
[[nodiscard]] ClassMeans money_class_means(const QosParameterConfig& p);

}  // namespace utilrisk::workload
