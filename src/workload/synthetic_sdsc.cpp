#include "workload/synthetic_sdsc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "sim/distributions.hpp"
#include "sim/time.hpp"

namespace utilrisk::workload {

namespace {

/// Empirical power-of-two weights for k in 2^k, calibrated together with
/// the log-uniform non-power-of-two branch so the overall job-size mean
/// lands at ~17 processors on a 128-node machine (the published subset
/// figure).
const std::vector<double>& p2_exponent_weights() {
  static const std::vector<double> weights = {0.22, 0.19, 0.17, 0.14,
                                              0.11, 0.09, 0.06, 0.02};
  return weights;
}

std::uint32_t sample_sdsc_job_size(sim::Rng& rng,
                                   const SyntheticSdscConfig& cfg) {
  const int max_exp =
      static_cast<int>(std::floor(std::log2(static_cast<double>(cfg.max_procs))));
  if (rng.bernoulli(cfg.power_of_two_bias)) {
    auto weights = p2_exponent_weights();
    if (static_cast<int>(weights.size()) > max_exp + 1) {
      weights.resize(static_cast<std::size_t>(max_exp) + 1);
    }
    const auto k = sim::sample_discrete(rng, weights);
    return std::min<std::uint32_t>(cfg.max_procs, 1u << k);
  }
  // Log-uniform over [1, max_procs]: matches the small-job-dominated size
  // mix of production traces better than a flat uniform.
  const double log_max = std::log2(static_cast<double>(cfg.max_procs));
  const double size = std::exp2(rng.uniform(0.0, log_max));
  return std::clamp<std::uint32_t>(static_cast<std::uint32_t>(std::round(size)),
                                   1u, cfg.max_procs);
}

double sample_sdsc_runtime(sim::Rng& rng, const SyntheticSdscConfig& cfg) {
  // The 18 h cap truncates the lognormal's heavy tail and would pull the
  // realised mean ~5 % under target; pre-inflate to compensate.
  constexpr double kTruncationCompensation = 1.055;
  const double raw = sim::sample_lognormal_mean_cv(
      rng, cfg.mean_runtime * kTruncationCompensation, cfg.runtime_cv);
  return std::clamp(raw, cfg.min_runtime, cfg.max_runtime);
}

double sample_estimate(sim::Rng& rng, const SyntheticSdscConfig& cfg,
                       double actual) {
  if (rng.bernoulli(cfg.overestimate_fraction)) {
    if (rng.bernoulli(cfg.queue_limit_mode_fraction)) {
      // Users who simply request the queue limit (modal estimate).
      return cfg.max_runtime;
    }
    const double factor = rng.uniform(cfg.over_factor_lo, cfg.over_factor_hi);
    // Users request round values: round *up* to 5-minute granularity so
    // the estimate stays an over-estimate; the queue limit caps everything
    // (actual runtimes are already clamped below it).
    double est = std::ceil(actual * factor / 300.0) * 300.0;
    est = std::min(est, cfg.max_runtime);
    return std::max(est, actual);
  }
  const double factor = rng.uniform(cfg.under_factor_lo, cfg.under_factor_hi);
  return std::max(1.0, actual * factor);  // factor < 1 keeps it an under-estimate
}

}  // namespace

std::vector<Job> generate_synthetic_sdsc(const SyntheticSdscConfig& cfg) {
  if (cfg.job_count == 0) {
    throw std::invalid_argument("generate_synthetic_sdsc: job_count == 0");
  }
  if (cfg.max_procs == 0) {
    throw std::invalid_argument("generate_synthetic_sdsc: max_procs == 0");
  }
  if (cfg.mean_interarrival <= 0.0 || cfg.mean_runtime <= 0.0) {
    throw std::invalid_argument(
        "generate_synthetic_sdsc: means must be positive");
  }
  if (cfg.overestimate_fraction < 0.0 || cfg.overestimate_fraction > 1.0) {
    throw std::invalid_argument(
        "generate_synthetic_sdsc: overestimate_fraction outside [0,1]");
  }

  sim::Rng rng(cfg.seed);
  // Independent streams per attribute so tweaking one knob (e.g. estimate
  // factors) does not reshuffle arrivals or runtimes.
  sim::Rng arrivals = rng.split();
  sim::Rng sizes = rng.split();
  sim::Rng runtimes = rng.split();
  sim::Rng estimates = rng.split();

  std::vector<Job> jobs;
  jobs.reserve(cfg.job_count);

  double clock = 0.0;
  for (std::uint32_t i = 0; i < cfg.job_count; ++i) {
    Job job;
    job.id = i + 1;
    job.submit_time = clock;
    job.procs = sample_sdsc_job_size(sizes, cfg);
    job.actual_runtime = sample_sdsc_runtime(runtimes, cfg);
    job.estimated_runtime = sample_estimate(estimates, cfg, job.actual_runtime);

    jobs.push_back(job);

    // Diurnal modulation: arrivals thin out at "night". Arrivals sample
    // the day-phase with density ~ 1/modulation (more jobs land where the
    // gaps are short), which biases the realised mean gap down to
    // target * sqrt(1 - A^2); pre-dividing by that factor restores
    // cfg.mean_interarrival as the long-run mean.
    const double amplitude = cfg.diurnal_amplitude;
    const double length_bias = std::sqrt(1.0 - amplitude * amplitude);
    const double phase =
        2.0 * M_PI * std::fmod(clock, sim::duration::kDay) / sim::duration::kDay;
    const double modulation = 1.0 - amplitude * std::sin(phase);
    clock += sim::sample_exponential(
                 arrivals, cfg.mean_interarrival / length_bias) *
             modulation;
  }
  return jobs;
}

}  // namespace utilrisk::workload
