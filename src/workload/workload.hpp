// Workload assembly: trace + QoS + experiment knobs (arrival delay factor,
// runtime-estimate inaccuracy) -> the job stream fed to a simulation run.
#pragma once

#include <string>
#include <vector>

#include "workload/job.hpp"
#include "workload/qos.hpp"
#include "workload/synthetic_sdsc.hpp"

namespace utilrisk::workload {

/// Scales inter-arrival times by `factor` (paper §5.3: "arrival delay
/// factor"; 0.1 turns a 600 s gap into 60 s — lower factor = heavier
/// load). Submission order and the first submit time are preserved.
/// factor must be > 0.
void apply_arrival_delay_factor(std::vector<Job>& jobs, double factor);

/// Sets each job's visible estimate to
///   actual + (inaccuracy_percent/100) * (trace_estimate - actual)
/// where `trace_estimate` is the estimate currently stored on the job.
/// 0 % -> perfectly accurate estimates (Set A); 100 % -> the trace's own
/// estimates (Set B). `jobs` is modified in place; callers that need the
/// original estimates keep a pristine copy (WorkloadBuilder does).
void apply_estimate_inaccuracy(std::vector<Job>& jobs,
                               double inaccuracy_percent);

/// One-stop builder used by the experiment harness: generates (or adopts)
/// a base trace once, then stamps out per-scenario variants without
/// re-sampling the trace (so scenarios differ only in the knob under
/// study).
class WorkloadBuilder {
 public:
  /// Builds on a synthetic SDSC SP2 base trace. Routed through the
  /// generator registry (spec_for emits every config field), so the
  /// trace is bit-identical to calling generate_synthetic_sdsc directly.
  explicit WorkloadBuilder(const SyntheticSdscConfig& trace_config);

  /// Builds on any registered generator method, addressed by a
  /// "name:key=value,..." spec string (generator.hpp).
  explicit WorkloadBuilder(const std::string& generator_spec);

  /// Builds on an externally loaded trace (e.g. the real SWF file).
  explicit WorkloadBuilder(std::vector<Job> base_trace);

  /// Materialises a run's job stream:
  ///   1. copy the base trace,
  ///   2. scale arrivals by `arrival_delay_factor`,
  ///   3. assign QoS terms per `qos` (deterministic in qos.seed),
  ///   4. blend estimates per `inaccuracy_percent`.
  [[nodiscard]] std::vector<Job> build(const QosConfig& qos,
                                       double arrival_delay_factor,
                                       double inaccuracy_percent) const;

  [[nodiscard]] const std::vector<Job>& base_trace() const { return base_; }

 private:
  std::vector<Job> base_;
};

}  // namespace utilrisk::workload
