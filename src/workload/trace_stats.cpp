#include "workload/trace_stats.hpp"

#include <algorithm>
#include <ostream>

namespace utilrisk::workload {

TraceStats compute_trace_stats(const std::vector<Job>& jobs,
                               std::uint32_t nodes) {
  TraceStats stats;
  stats.job_count = jobs.size();
  if (jobs.empty()) return stats;

  double total_runtime = 0.0;
  double total_procs = 0.0;
  double total_work = 0.0;
  double total_ratio = 0.0;
  std::size_t over = 0;
  std::size_t under = 0;
  double end = 0.0;

  for (const auto& job : jobs) {
    total_runtime += job.actual_runtime;
    total_procs += static_cast<double>(job.procs);
    total_work += job.work();
    stats.max_runtime = std::max(stats.max_runtime, job.actual_runtime);
    stats.max_procs = std::max(stats.max_procs, job.procs);
    if (job.actual_runtime > 0.0) {
      total_ratio += job.estimated_runtime / job.actual_runtime;
    }
    if (job.estimated_runtime > job.actual_runtime) {
      ++over;
    } else if (job.estimated_runtime < job.actual_runtime) {
      ++under;
    }
    end = std::max(end, job.submit_time + job.actual_runtime);
  }

  const double n = static_cast<double>(jobs.size());
  stats.mean_runtime = total_runtime / n;
  stats.mean_procs = total_procs / n;
  stats.mean_estimate_ratio = total_ratio / n;
  stats.overestimate_fraction = static_cast<double>(over) / n;
  stats.underestimate_fraction = static_cast<double>(under) / n;

  if (jobs.size() > 1) {
    stats.mean_interarrival =
        (jobs.back().submit_time - jobs.front().submit_time) / (n - 1.0);
  }
  stats.makespan = end - jobs.front().submit_time;
  if (nodes > 0 && stats.makespan > 0.0) {
    stats.offered_utilization =
        total_work / (static_cast<double>(nodes) * stats.makespan);
  }
  return stats;
}

std::ostream& operator<<(std::ostream& out, const TraceStats& stats) {
  out << "jobs:                 " << stats.job_count << '\n'
      << "mean inter-arrival:   " << stats.mean_interarrival << " s\n"
      << "mean runtime:         " << stats.mean_runtime << " s\n"
      << "max runtime:          " << stats.max_runtime << " s\n"
      << "mean procs:           " << stats.mean_procs << '\n'
      << "max procs:            " << stats.max_procs << '\n'
      << "makespan:             " << stats.makespan << " s\n"
      << "offered utilization:  " << stats.offered_utilization << '\n'
      << "over-estimated:       " << stats.overestimate_fraction * 100.0
      << " %\n"
      << "under-estimated:      " << stats.underestimate_fraction * 100.0
      << " %\n"
      << "mean estimate ratio:  " << stats.mean_estimate_ratio << '\n';
  return out;
}

}  // namespace utilrisk::workload
