#include "workload/qos.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "sim/distributions.hpp"

namespace utilrisk::workload {

namespace {

void validate(const QosParameterConfig& p, const char* what) {
  if (p.low_value_mean <= 0.0) {
    throw std::invalid_argument(std::string(what) + ": low_value_mean <= 0");
  }
  if (p.high_low_ratio < 1.0) {
    throw std::invalid_argument(std::string(what) + ": high_low_ratio < 1");
  }
  if (p.bias < 1.0) {
    throw std::invalid_argument(std::string(what) + ": bias < 1");
  }
  if (p.sigma_fraction < 0.0) {
    throw std::invalid_argument(std::string(what) + ": sigma_fraction < 0");
  }
}

/// Samples a class factor: Normal(mean, sigma_fraction * mean), truncated
/// to stay positive (floor at 5 % of the mean).
double sample_factor(sim::Rng& rng, const QosParameterConfig& p,
                     double mean) {
  return sim::sample_truncated_normal(rng, mean, p.sigma_fraction * mean,
                                      0.05 * mean, 10.0 * mean);
}

/// Applies the runtime bias: longer-than-average jobs get value / bias,
/// shorter jobs get value * bias (paper §5.3).
double apply_bias(double value, double bias, double runtime,
                  double mean_runtime) {
  if (bias <= 1.0) return value;
  return runtime > mean_runtime ? value / bias : value * bias;
}

}  // namespace

ClassMeans deadline_class_means(const QosParameterConfig& p) {
  // High-urgency jobs have the LOW deadline factors.
  return {.high_urgency_mean = p.low_value_mean,
          .low_urgency_mean = p.low_value_mean * p.high_low_ratio};
}

ClassMeans money_class_means(const QosParameterConfig& p) {
  // High-urgency jobs have the HIGH budget / penalty factors.
  return {.high_urgency_mean = p.low_value_mean * p.high_low_ratio,
          .low_urgency_mean = p.low_value_mean};
}

void assign_qos(std::vector<Job>& jobs, const QosConfig& config) {
  if (config.high_urgency_percent < 0.0 ||
      config.high_urgency_percent > 100.0) {
    throw std::invalid_argument("assign_qos: high_urgency_percent outside [0,100]");
  }
  validate(config.deadline, "deadline");
  validate(config.budget, "budget");
  validate(config.penalty, "penalty");
  if (config.base_price <= 0.0) {
    throw std::invalid_argument("assign_qos: base_price <= 0");
  }
  if (jobs.empty()) return;

  double mean_runtime = 0.0;
  for (const auto& job : jobs) mean_runtime += job.actual_runtime;
  mean_runtime /= static_cast<double>(jobs.size());

  const ClassMeans d_means = deadline_class_means(config.deadline);
  const ClassMeans b_means = money_class_means(config.budget);
  const ClassMeans p_means = money_class_means(config.penalty);

  sim::Rng rng(config.seed);
  sim::Rng class_stream = rng.split();
  sim::Rng deadline_stream = rng.split();
  sim::Rng budget_stream = rng.split();
  sim::Rng penalty_stream = rng.split();

  const double p_high = config.high_urgency_percent / 100.0;

  for (auto& job : jobs) {
    // "The arrival sequence of jobs from the high urgency and low urgency
    // classes is randomly distributed" — iid class draw per job.
    job.urgency =
        class_stream.bernoulli(p_high) ? Urgency::High : Urgency::Low;
    const bool high = job.urgency == Urgency::High;

    double d_factor = sample_factor(
        deadline_stream, config.deadline,
        high ? d_means.high_urgency_mean : d_means.low_urgency_mean);
    d_factor = apply_bias(d_factor, config.deadline.bias, job.actual_runtime,
                          mean_runtime);
    d_factor = std::max(d_factor, config.deadline_factor_floor);
    job.deadline_duration = d_factor * job.actual_runtime;

    double b_factor = sample_factor(
        budget_stream, config.budget,
        high ? b_means.high_urgency_mean : b_means.low_urgency_mean);
    b_factor = apply_bias(b_factor, config.budget.bias, job.actual_runtime,
                          mean_runtime);
    // f(tr) = tr * base_price: the budget is a multiple of the base cost.
    job.budget = b_factor * job.actual_runtime * config.base_price;

    double p_factor = sample_factor(
        penalty_stream, config.penalty,
        high ? p_means.high_urgency_mean : p_means.low_urgency_mean);
    p_factor = apply_bias(p_factor, config.penalty.bias, job.actual_runtime,
                          mean_runtime);
    // g(tr) = tr * base_price / 3600 (see qos.hpp header comment).
    job.penalty_rate =
        p_factor * job.actual_runtime * config.base_price / 3600.0;
  }

  validate_sla_terms(jobs);
}

void validate_sla_terms(const std::vector<Job>& jobs) {
  for (const Job& job : jobs) {
    const std::string prefix =
        "validate_sla_terms: job " + std::to_string(job.id) + ": ";
    if (!std::isfinite(job.deadline_duration) ||
        job.deadline_duration <= 0.0) {
      throw std::invalid_argument(
          prefix + "deadline_duration must be finite and > 0 (got " +
          std::to_string(job.deadline_duration) + ")");
    }
    if (!std::isfinite(job.budget) || job.budget < 0.0) {
      throw std::invalid_argument(prefix +
                                  "budget must be finite and >= 0 (got " +
                                  std::to_string(job.budget) + ")");
    }
    if (!std::isfinite(job.penalty_rate) || job.penalty_rate < 0.0) {
      throw std::invalid_argument(
          prefix + "penalty_rate must be finite and >= 0 (got " +
          std::to_string(job.penalty_rate) + ")");
    }
  }
}

}  // namespace utilrisk::workload
