#include "workload/flash_crowd.hpp"

#include <cmath>
#include <stdexcept>

#include "sim/time.hpp"

namespace utilrisk::workload {

void FlashCrowdParams::validate() const {
  if (peak < 1.0 || !std::isfinite(peak)) {
    throw std::invalid_argument("flash-crowd: peak must be finite and >= 1");
  }
  if (start < 0.0 || duration < 0.0) {
    throw std::invalid_argument(
        "flash-crowd: start/duration must be >= 0");
  }
  if (period != 0.0 && period <= duration) {
    throw std::invalid_argument(
        "flash-crowd: period must be 0 (one-shot) or > duration");
  }
  if (diurnal_amplitude < 0.0 || diurnal_amplitude >= 1.0) {
    throw std::invalid_argument(
        "flash-crowd: diurnal amplitude outside [0, 1)");
  }
}

double rate_multiplier(const FlashCrowdParams& params, double t) {
  double rate = 1.0;
  if (params.diurnal_amplitude > 0.0) {
    const double phase = 2.0 * M_PI *
                         std::fmod(t, sim::duration::kDay) /
                         sim::duration::kDay;
    rate *= 1.0 + params.diurnal_amplitude * std::sin(phase);
  }
  if (params.peak > 1.0 && params.duration > 0.0) {
    const double offset =
        params.period > 0.0
            ? std::fmod(t - params.start, params.period)
            : t - params.start;
    if (offset >= 0.0 && offset < params.duration) rate *= params.peak;
  }
  return rate;
}

void apply_rate_modulation(std::vector<Job>& jobs,
                           const FlashCrowdParams& params) {
  params.validate();
  if (jobs.size() < 2) return;
  double prev_original = jobs.front().submit_time;
  double prev_warped = jobs.front().submit_time;
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    const double gap = jobs[i].submit_time - prev_original;
    if (gap < 0.0) {
      throw std::invalid_argument(
          "apply_rate_modulation: jobs not in submission order");
    }
    prev_original = jobs[i].submit_time;
    prev_warped += gap / rate_multiplier(params, prev_warped);
    jobs[i].submit_time = prev_warped;
  }
}

}  // namespace utilrisk::workload
