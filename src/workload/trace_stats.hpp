// Summary statistics over a job trace, used to validate the synthetic
// SDSC SP2 substitute against the published subset figures and to report
// workload characteristics in EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "workload/job.hpp"

namespace utilrisk::workload {

struct TraceStats {
  std::size_t job_count = 0;
  double mean_interarrival = 0.0;   ///< seconds
  double mean_runtime = 0.0;        ///< seconds
  double max_runtime = 0.0;
  double mean_procs = 0.0;
  std::uint32_t max_procs = 0;
  double makespan = 0.0;            ///< last submit + its runtime - first submit
  /// Offered utilisation: total work / (nodes * makespan). >1 means the
  /// submitted demand exceeds machine capacity (admission control territory).
  double offered_utilization = 0.0;
  double overestimate_fraction = 0.0;
  double underestimate_fraction = 0.0;
  /// Mean of estimate/actual over all jobs (>=1 means padding on average).
  double mean_estimate_ratio = 0.0;
};

/// Computes stats; `nodes` is the machine width used for utilisation.
[[nodiscard]] TraceStats compute_trace_stats(const std::vector<Job>& jobs,
                                             std::uint32_t nodes);

/// Human-readable one-per-line dump.
std::ostream& operator<<(std::ostream& out, const TraceStats& stats);

}  // namespace utilrisk::workload
