// Job model: what a user submits to the commercial computing service.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace utilrisk::workload {

using JobId = std::uint32_t;

/// Urgency class per the paper's §5.3 QoS methodology (after Irwin et al.):
/// high-urgency jobs have tight deadlines, large budgets and penalty rates;
/// low-urgency jobs the opposite.
enum class Urgency : std::uint8_t { Low = 0, High = 1 };

[[nodiscard]] inline const char* to_string(Urgency u) {
  return u == Urgency::High ? "high" : "low";
}

/// A parallel, rigid, non-preemptible job plus its SLA terms.
///
/// Times are in seconds. `actual_runtime` is the wall-clock the job needs on
/// `procs` dedicated processors; policies never see it directly — they see
/// `estimated_runtime` (the user-provided estimate, already adjusted by the
/// experiment's inaccuracy knob).
struct Job {
  JobId id = 0;

  /// Absolute submission time (simulation epoch).
  sim::SimTime submit_time = 0.0;

  /// True wall-clock runtime on dedicated processors (hidden from policies).
  double actual_runtime = 0.0;

  /// User-supplied runtime estimate visible to schedulers.
  double estimated_runtime = 0.0;

  /// Required number of processors (rigid allocation).
  std::uint32_t procs = 1;

  /// Owning tenant/user id (stamped by multi-tenant generators such as
  /// `zipf`; 0 = unattributed single-tenant traffic). Folded into the
  /// canonical run digest when attributed (verify::kRunDigestSchemaVersion
  /// v2); legacy workloads leave it zero, so their digests are unchanged.
  /// The sharded serving path also routes by it (serve/shard.hpp).
  std::uint32_t tenant = 0;

  // --- SLA / QoS terms (paper §5.3) -------------------------------------

  /// Deadline as a duration from submission: the job must finish by
  /// submit_time + deadline_duration for its SLA to be fulfilled (eqn 10
  /// uses d_i relative to submission).
  double deadline_duration = 0.0;

  /// Maximum amount the user pays for on-time completion ($).
  double budget = 0.0;

  /// Linear penalty rate ($/s of delay past the deadline) in the bid-based
  /// model (Fig. 2); unused in the commodity market model.
  double penalty_rate = 0.0;

  Urgency urgency = Urgency::Low;

  /// Absolute deadline.
  [[nodiscard]] sim::SimTime absolute_deadline() const {
    return submit_time + deadline_duration;
  }

  /// Deadline factor d/tr used by the workload generator knobs.
  [[nodiscard]] double deadline_factor() const {
    return actual_runtime > 0.0 ? deadline_duration / actual_runtime : 0.0;
  }

  /// Total processor-seconds of real work.
  [[nodiscard]] double work() const {
    return actual_runtime * static_cast<double>(procs);
  }

  /// True if the estimate is below the real runtime (the 8% tail in the
  /// SDSC SP2 subset).
  [[nodiscard]] bool underestimated() const {
    return estimated_runtime < actual_runtime;
  }
};

/// Outcome of one job's SLA lifecycle, recorded by the service.
enum class JobOutcome : std::uint8_t {
  Rejected,        ///< admission control refused the SLA
  FulfilledSLA,    ///< accepted and finished within deadline
  ViolatedSLA,     ///< accepted but finished after deadline
  TerminatedSLA,   ///< accepted but killed at the deadline (preemption
                   ///< ablation; the paper's policies never terminate)
  FailedOutage,    ///< accepted but lost to a node failure after the
                   ///< bounded-retry budget was exhausted
  Unfinished,      ///< accepted but still running when the horizon closed
};

[[nodiscard]] inline const char* to_string(JobOutcome o) {
  switch (o) {
    case JobOutcome::Rejected: return "rejected";
    case JobOutcome::FulfilledSLA: return "fulfilled";
    case JobOutcome::ViolatedSLA: return "violated";
    case JobOutcome::TerminatedSLA: return "terminated";
    case JobOutcome::FailedOutage: return "failed-outage";
    case JobOutcome::Unfinished: return "unfinished";
  }
  return "?";
}

}  // namespace utilrisk::workload
