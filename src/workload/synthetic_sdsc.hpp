// Synthetic substitute for the last-5000-job subset of the SDSC SP2 trace.
//
// The real trace (Parallel Workloads Archive, SDSC-SP2-1998-4.2-cln.swf) is
// not redistributable inside this repository and the build environment is
// offline, so we generate a statistically matched workload instead
// (DESIGN.md §3). Published subset statistics reproduced:
//   - 128 compute nodes (IBM SP2 @ SDSC, SPEC rating 168)
//   - mean job size ~17 processors, power-of-two biased
//   - mean inter-arrival time 1969 s, bursty (diurnal modulation)
//   - mean runtime 8671 s, heavy-tailed (lognormal), capped at 18 h
//   - user runtime estimates: 92 % over-estimates, 8 % under-estimates
//
// `load_swf` (swf.hpp) remains a drop-in replacement when the real trace
// is available.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"
#include "workload/job.hpp"

namespace utilrisk::workload {

/// Tunables for the synthetic SDSC SP2 generator. Defaults reproduce the
/// published subset statistics above.
struct SyntheticSdscConfig {
  std::uint32_t job_count = 5000;
  std::uint32_t max_procs = 128;        ///< cluster width
  double mean_interarrival = 1969.0;    ///< seconds
  double mean_runtime = 8671.0;         ///< seconds
  double runtime_cv = 1.8;              ///< coefficient of variation (heavy tail)
  double max_runtime = 18.0 * 3600.0;   ///< SP2 18 h queue limit
  double min_runtime = 10.0;            ///< drop sub-10 s noise jobs
  double power_of_two_bias = 0.75;      ///< P(job size is a power of two)
  double mean_procs_target = 17.0;      ///< calibrated job-size mean
  double overestimate_fraction = 0.92;  ///< share of over-estimated jobs
  /// Over-estimates: estimate = actual * U[over_lo, over_hi], then rounded
  /// up to the 5-minute granularity users typically request.
  double over_factor_lo = 1.1;
  double over_factor_hi = 5.0;
  /// Under-estimates: estimate = actual * U[under_lo, under_hi].
  double under_factor_lo = 0.35;
  double under_factor_hi = 0.95;
  /// Fraction of over-estimators who just request the queue limit (the
  /// dominant mode in Tsafrir et al.'s estimate model).
  double queue_limit_mode_fraction = 0.2;
  /// Diurnal arrival modulation amplitude in [0, 1): instantaneous arrival
  /// rate swings by +/- this fraction over a 24 h cycle.
  double diurnal_amplitude = 0.5;
  std::uint64_t seed = 42;
};

/// Generates the synthetic trace. Deterministic in `config` (including
/// seed). Jobs are returned in submission order with ids 1..N and the
/// first submission at t = 0. Estimates are written to
/// `estimated_runtime`; QoS fields are left zero (see qos.hpp).
[[nodiscard]] std::vector<Job> generate_synthetic_sdsc(
    const SyntheticSdscConfig& config);

}  // namespace utilrisk::workload
