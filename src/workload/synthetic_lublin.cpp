#include "workload/synthetic_lublin.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "sim/distributions.hpp"
#include "sim/time.hpp"

namespace utilrisk::workload {

namespace {

/// Empirical daily arrival-rate profile (relative weights per hour),
/// shaped after the Lublin-Feitelson day cycle: a deep night trough and a
/// broad 9:00-17:00 plateau. Normalised at use.
constexpr std::array<double, 24> kHourlyRate = {
    0.4, 0.3, 0.25, 0.2, 0.2, 0.25, 0.4, 0.7, 1.1, 1.5, 1.7, 1.8,
    1.7, 1.8, 1.8,  1.7, 1.6, 1.4,  1.1, 0.9, 0.8, 0.7, 0.6, 0.5};

double mean_hourly_rate() {
  double sum = 0.0;
  for (double r : kHourlyRate) sum += r;
  return sum / static_cast<double>(kHourlyRate.size());
}

std::uint32_t sample_lublin_size(sim::Rng& rng,
                                 const SyntheticLublinConfig& cfg) {
  if (rng.bernoulli(cfg.serial_fraction)) return 1;
  // Parallel sizes: log-uniform over [2, max_procs], with power-of-two
  // rounding for the configured fraction.
  const double log_lo = std::log2(2.0);
  const double log_hi = std::log2(static_cast<double>(cfg.max_procs));
  const double raw = std::exp2(rng.uniform(log_lo, log_hi));
  if (rng.bernoulli(cfg.power_of_two_fraction)) {
    const double rounded = std::exp2(std::round(std::log2(raw)));
    return std::clamp<std::uint32_t>(
        static_cast<std::uint32_t>(rounded), 2u, cfg.max_procs);
  }
  return std::clamp<std::uint32_t>(static_cast<std::uint32_t>(std::round(raw)),
                                   2u, cfg.max_procs);
}

double sample_lublin_runtime(sim::Rng& rng, const SyntheticLublinConfig& cfg,
                             std::uint32_t procs) {
  // Hyper-gamma: mix of a short and a long gamma mode; wide jobs skew
  // toward the long mode (the size/runtime correlation Lublin models).
  const double width =
      std::log2(static_cast<double>(procs) + 1.0) /
      std::log2(static_cast<double>(cfg.max_procs) + 1.0);
  const double p_short =
      cfg.p_short_serial + (cfg.p_short_wide - cfg.p_short_serial) * width;
  const double runtime =
      rng.bernoulli(p_short)
          ? sim::sample_gamma(rng, cfg.short_shape, cfg.short_scale)
          : sim::sample_gamma(rng, cfg.long_shape, cfg.long_scale);
  return std::clamp(runtime, cfg.min_runtime, cfg.max_runtime);
}

double sample_lublin_estimate(sim::Rng& rng,
                              const SyntheticLublinConfig& cfg,
                              double actual) {
  if (rng.bernoulli(cfg.overestimate_fraction)) {
    double est = std::ceil(
                     actual * rng.uniform(cfg.over_factor_lo,
                                          cfg.over_factor_hi) / 300.0) *
                 300.0;
    est = std::min(est, cfg.max_runtime);
    return std::max(est, actual);
  }
  return std::max(1.0,
                  actual * rng.uniform(cfg.under_factor_lo,
                                       cfg.under_factor_hi));
}

}  // namespace

std::vector<Job> generate_synthetic_lublin(
    const SyntheticLublinConfig& cfg) {
  if (cfg.job_count == 0 || cfg.max_procs == 0) {
    throw std::invalid_argument(
        "generate_synthetic_lublin: empty trace or machine");
  }
  if (cfg.mean_interarrival <= 0.0 || cfg.arrival_shape <= 0.0) {
    throw std::invalid_argument(
        "generate_synthetic_lublin: arrival parameters must be positive");
  }
  if (cfg.serial_fraction < 0.0 || cfg.serial_fraction > 1.0 ||
      cfg.overestimate_fraction < 0.0 || cfg.overestimate_fraction > 1.0) {
    throw std::invalid_argument(
        "generate_synthetic_lublin: fractions outside [0,1]");
  }

  sim::Rng rng(cfg.seed);
  sim::Rng arrivals = rng.split();
  sim::Rng sizes = rng.split();
  sim::Rng runtimes = rng.split();
  sim::Rng estimates = rng.split();

  std::vector<Job> jobs;
  jobs.reserve(cfg.job_count);

  // Gamma inter-arrivals, locally slowed down by the inverse hourly rate.
  // Unlike the sinusoidal modulation in synthetic_sdsc.cpp, this form has
  // no length bias: arrivals sample hour h with density rate_h, the gap
  // there is X * rate_mean / rate_h, and the rate-weighted mean of
  // rate_mean / rate_h is exactly 1 — so the realised long-run mean gap
  // equals E[X] = shape * scale with no correction factor.
  const double rate_mean = mean_hourly_rate();
  const double gamma_scale = cfg.mean_interarrival / cfg.arrival_shape;

  double clock = 0.0;
  for (std::uint32_t i = 0; i < cfg.job_count; ++i) {
    Job job;
    job.id = i + 1;
    job.submit_time = clock;
    job.procs = sample_lublin_size(sizes, cfg);
    job.actual_runtime = sample_lublin_runtime(runtimes, cfg, job.procs);
    job.estimated_runtime =
        sample_lublin_estimate(estimates, cfg, job.actual_runtime);
    jobs.push_back(job);

    const int hour = static_cast<int>(
        std::fmod(clock, sim::duration::kDay) / sim::duration::kHour);
    const double slowdown =
        rate_mean / kHourlyRate[static_cast<std::size_t>(hour)];
    clock += sim::sample_gamma(arrivals, cfg.arrival_shape, gamma_scale) *
             slowdown;
  }
  return jobs;
}

}  // namespace utilrisk::workload
