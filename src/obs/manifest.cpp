#include "obs/manifest.hpp"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace utilrisk::obs {

const char* build_git_describe() {
#ifdef UTILRISK_GIT_DESCRIBE
  return UTILRISK_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

std::string utc_timestamp_now() {
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm utc{};
  gmtime_r(&now, &utc);
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%04d-%02d-%02dT%02d:%02d:%02dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec);
  return buffer;
}

json::Value RunManifest::to_json() const {
  json::Value out{json::Object{}};
  out.set("tool", tool);
  out.set("schema", schema);
  out.set("command", command);
  json::Value argv_json{json::Array{}};
  for (const std::string& arg : argv) argv_json.push_back(arg);
  out.set("argv", std::move(argv_json));
  out.set("git_describe", git_describe);
  out.set("started_at_utc", started_at_utc);
  out.set("wall_seconds", wall_seconds);
  json::Value config_json{json::Object{}};
  for (const auto& [key, value] : config) config_json.set(key, value);
  out.set("config", std::move(config_json));
  json::Value seeds_json{json::Array{}};
  for (std::uint64_t seed : seeds) seeds_json.push_back(seed);
  out.set("seeds", std::move(seeds_json));
  json::Value stats_json{json::Object{}};
  for (const auto& [key, value] : stats) stats_json.set(key, value);
  out.set("stats", std::move(stats_json));
  if (!digest.empty()) out.set("digest", digest);
  out.set("metrics", metrics.to_json());
  return out;
}

void RunManifest::write(std::ostream& out) const { to_json().dump(out); }

RunManifest RunManifest::from_json(const json::Value& value) {
  RunManifest manifest;
  manifest.tool = value.at("tool").as_string();
  manifest.schema = value.at("schema").as_string();
  manifest.command = value.at("command").as_string();
  manifest.argv.clear();
  for (const json::Value& arg : value.at("argv").as_array()) {
    manifest.argv.push_back(arg.as_string());
  }
  manifest.git_describe = value.at("git_describe").as_string();
  manifest.started_at_utc = value.at("started_at_utc").as_string();
  manifest.wall_seconds = value.at("wall_seconds").as_number();
  for (const auto& [key, v] : value.at("config").as_object()) {
    manifest.config.emplace_back(key, v.as_string());
  }
  for (const json::Value& seed : value.at("seeds").as_array()) {
    manifest.seeds.push_back(static_cast<std::uint64_t>(seed.as_number()));
  }
  for (const auto& [key, v] : value.at("stats").as_object()) {
    manifest.stats.emplace_back(key, v.as_number());
  }
  // Tolerant: manifests written before the digest field existed parse on.
  if (const json::Value* digest = value.find("digest")) {
    manifest.digest = digest->as_string();
  }
  manifest.metrics = MetricSnapshot::from_json(value.at("metrics"));
  return manifest;
}

RunManifest RunManifest::parse(const std::string& text) {
  return from_json(json::parse(text));
}

std::string manifest_filename(const std::string& command) {
  return "utilrisk_manifest_" + command + ".json";
}

std::string write_manifest(const RunManifest& manifest,
                           const std::string& dir) {
  std::filesystem::create_directories(dir);
  const std::string path =
      (std::filesystem::path(dir) / manifest_filename(manifest.command))
          .string();
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_manifest: cannot write " + path);
  }
  manifest.write(out);
  if (!out) {
    throw std::runtime_error("write_manifest: short write to " + path);
  }
  return path;
}

RunManifest read_manifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("read_manifest: cannot read " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return RunManifest::parse(text.str());
}

}  // namespace utilrisk::obs
