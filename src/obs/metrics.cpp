#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace utilrisk::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(bounds_.size() + 1) {  // + overflow
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: needs at least one bound");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument(
        "Histogram: bounds must be strictly increasing");
  }
}

void Histogram::observe(double value) {
  // Buckets are few (default 14); upper_bound beats maintaining a branchy
  // unrolled scan and stays O(log n) if someone registers many.
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), value,
                                   [](double v, double bound) {
                                     return v <= bound;  // le upper bounds
                                   });
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

const std::vector<double>& default_time_buckets() {
  static const std::vector<double> buckets = {
      0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0,
      5.0,   10.0,  30.0, 60.0, 120.0, 300.0, 600.0};
  return buckets;
}

std::uint64_t MetricSnapshot::counter(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

json::Value MetricSnapshot::to_json() const {
  json::Value counters_json{json::Object{}};
  for (const auto& [name, value] : counters) counters_json.set(name, value);
  json::Value gauges_json{json::Object{}};
  for (const auto& [name, value] : gauges) gauges_json.set(name, value);
  json::Value histograms_json{json::Object{}};
  for (const HistogramSnapshot& h : histograms) {
    json::Value bounds{json::Array{}};
    for (double b : h.upper_bounds) bounds.push_back(b);
    json::Value buckets{json::Array{}};
    for (std::uint64_t b : h.buckets) buckets.push_back(b);
    json::Value entry{json::Object{}};
    entry.set("upper_bounds", std::move(bounds));
    entry.set("buckets", std::move(buckets));
    entry.set("count", h.count);
    entry.set("sum", h.sum);
    histograms_json.set(h.name, std::move(entry));
  }
  json::Value out{json::Object{}};
  out.set("counters", std::move(counters_json));
  out.set("gauges", std::move(gauges_json));
  out.set("histograms", std::move(histograms_json));
  return out;
}

MetricSnapshot MetricSnapshot::from_json(const json::Value& value) {
  MetricSnapshot snapshot;
  for (const auto& [name, v] : value.at("counters").as_object()) {
    snapshot.counters.emplace_back(
        name, static_cast<std::uint64_t>(v.as_number()));
  }
  for (const auto& [name, v] : value.at("gauges").as_object()) {
    snapshot.gauges.emplace_back(name, v.as_number());
  }
  for (const auto& [name, v] : value.at("histograms").as_object()) {
    HistogramSnapshot h;
    h.name = name;
    for (const json::Value& b : v.at("upper_bounds").as_array()) {
      h.upper_bounds.push_back(b.as_number());
    }
    for (const json::Value& b : v.at("buckets").as_array()) {
      h.buckets.push_back(static_cast<std::uint64_t>(b.as_number()));
    }
    h.count = static_cast<std::uint64_t>(v.at("count").as_number());
    h.sum = v.at("sum").as_number();
    snapshot.histograms.push_back(std::move(h));
  }
  return snapshot;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return *slot;
}

MetricSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace_back(name, counter->value());
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.emplace_back(name, gauge->value());
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.upper_bounds = histogram->upper_bounds();
    h.buckets.reserve(h.upper_bounds.size() + 1);
    for (std::size_t i = 0; i < h.upper_bounds.size() + 1; ++i) {
      h.buckets.push_back(histogram->bucket_count(i));
    }
    h.count = histogram->count();
    h.sum = histogram->sum();
    out.histograms.push_back(std::move(h));
  }
  return out;
}

Counter* counter_or_null(MetricsRegistry* registry, const std::string& name) {
  if (registry == nullptr || !registry->enabled()) return nullptr;
  return &registry->counter(name);
}

Gauge* gauge_or_null(MetricsRegistry* registry, const std::string& name) {
  if (registry == nullptr || !registry->enabled()) return nullptr;
  return &registry->gauge(name);
}

Histogram* histogram_or_null(MetricsRegistry* registry,
                             const std::string& name,
                             std::vector<double> upper_bounds) {
  if (registry == nullptr || !registry->enabled()) return nullptr;
  return &registry->histogram(name, std::move(upper_bounds));
}

}  // namespace utilrisk::obs
