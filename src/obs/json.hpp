// Minimal JSON value: build, serialise, parse.
//
// The observability layer writes machine-readable artefacts (run
// manifests, metric snapshots, bench JSON) and the obs test suite must
// round-trip them, so this module owns both directions. Deliberately
// tiny: objects preserve insertion order (manifests diff cleanly), all
// numbers are doubles (every value we emit — counters, seeds, seconds —
// fits a double exactly), and parse errors carry the offending offset.
// No external dependencies.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace utilrisk::obs::json {

class Value;

/// Ordered sequence of values.
using Array = std::vector<Value>;
/// Object as an insertion-ordered key/value list (duplicate keys are not
/// rejected on parse; find() returns the first).
using Object = std::vector<std::pair<std::string, Value>>;

/// Thrown by parse() with a byte offset in the message.
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}        // NOLINT(runtime/explicit)
  Value(bool b) : data_(b) {}                      // NOLINT(runtime/explicit)
  Value(double d) : data_(d) {}                    // NOLINT(runtime/explicit)
  Value(int i) : data_(static_cast<double>(i)) {}  // NOLINT(runtime/explicit)
  Value(std::int64_t i)                            // NOLINT(runtime/explicit)
      : data_(static_cast<double>(i)) {}
  Value(std::uint64_t i)                           // NOLINT(runtime/explicit)
      : data_(static_cast<double>(i)) {}
  Value(const char* s) : data_(std::string(s)) {}  // NOLINT(runtime/explicit)
  Value(std::string s) : data_(std::move(s)) {}    // NOLINT(runtime/explicit)
  Value(Array a) : data_(std::move(a)) {}          // NOLINT(runtime/explicit)
  Value(Object o) : data_(std::move(o)) {}         // NOLINT(runtime/explicit)

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(data_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(data_);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(data_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(data_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(data_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(data_);
  }

  // Typed access; throws std::runtime_error on a type mismatch so a
  // malformed manifest fails loudly instead of reading garbage.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup (first match), nullptr when absent or not an
  /// object.
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// Object member lookup that throws (with the key name) when missing.
  [[nodiscard]] const Value& at(std::string_view key) const;

  /// Appends (or replaces the first occurrence of) an object member.
  /// Converts a null value into an empty object first.
  void set(std::string key, Value value);

  /// Appends an array element. Converts a null value into an empty array.
  void push_back(Value value);

  /// Pretty-prints with two-space indentation and a trailing newline at
  /// depth 0. Numbers that hold integral values print without a decimal
  /// point.
  void dump(std::ostream& out, int depth = 0) const;
  [[nodiscard]] std::string dump_string() const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      data_;
};

/// Parses one JSON document (trailing whitespace allowed, anything else
/// after the value is an error). Throws ParseError — including on
/// container nesting deeper than 64 levels, a guard against hostile
/// documents recursing the parser off the stack (the serve protocol
/// feeds this parser attacker-controlled bytes).
[[nodiscard]] Value parse(std::string_view text);

/// Writes `text` as a quoted, escaped JSON string literal.
void write_escaped(std::ostream& out, std::string_view text);

}  // namespace utilrisk::obs::json
