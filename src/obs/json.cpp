#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace utilrisk::obs::json {

namespace {

[[noreturn]] void type_error(const char* wanted) {
  throw std::runtime_error(std::string("json::Value: not a ") + wanted);
}

void write_number(std::ostream& out, double value) {
  // Counters/seeds/bucket counts round-trip as integers; everything else
  // keeps enough digits to reproduce the double.
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 9.007199254740992e15) {
    out << static_cast<std::int64_t>(value);
    return;
  }
  if (!std::isfinite(value)) {
    // JSON has no inf/nan; null is the conventional degradation.
    out << "null";
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out << buffer;
}

void write_indent(std::ostream& out, int depth) {
  for (int i = 0; i < depth; ++i) out << "  ";
}

}  // namespace

bool Value::as_bool() const {
  if (!is_bool()) type_error("bool");
  return std::get<bool>(data_);
}

double Value::as_number() const {
  if (!is_number()) type_error("number");
  return std::get<double>(data_);
}

const std::string& Value::as_string() const {
  if (!is_string()) type_error("string");
  return std::get<std::string>(data_);
}

const Array& Value::as_array() const {
  if (!is_array()) type_error("array");
  return std::get<Array>(data_);
}

const Object& Value::as_object() const {
  if (!is_object()) type_error("object");
  return std::get<Object>(data_);
}

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : std::get<Object>(data_)) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* found = find(key);
  if (found == nullptr) {
    throw std::runtime_error("json::Value: missing key '" +
                             std::string(key) + "'");
  }
  return *found;
}

void Value::set(std::string key, Value value) {
  if (is_null()) data_ = Object{};
  if (!is_object()) type_error("object");
  auto& members = std::get<Object>(data_);
  for (auto& [k, v] : members) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  members.emplace_back(std::move(key), std::move(value));
}

void Value::push_back(Value value) {
  if (is_null()) data_ = Array{};
  if (!is_array()) type_error("array");
  std::get<Array>(data_).push_back(std::move(value));
}

void write_escaped(std::ostream& out, std::string_view text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out << buffer;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void Value::dump(std::ostream& out, int depth) const {
  if (is_null()) {
    out << "null";
  } else if (is_bool()) {
    out << (std::get<bool>(data_) ? "true" : "false");
  } else if (is_number()) {
    write_number(out, std::get<double>(data_));
  } else if (is_string()) {
    write_escaped(out, std::get<std::string>(data_));
  } else if (is_array()) {
    const Array& items = std::get<Array>(data_);
    if (items.empty()) {
      out << "[]";
    } else {
      out << "[\n";
      for (std::size_t i = 0; i < items.size(); ++i) {
        write_indent(out, depth + 1);
        items[i].dump(out, depth + 1);
        out << (i + 1 < items.size() ? ",\n" : "\n");
      }
      write_indent(out, depth);
      out << ']';
    }
  } else {
    const Object& members = std::get<Object>(data_);
    if (members.empty()) {
      out << "{}";
    } else {
      out << "{\n";
      for (std::size_t i = 0; i < members.size(); ++i) {
        write_indent(out, depth + 1);
        write_escaped(out, members[i].first);
        out << ": ";
        members[i].second.dump(out, depth + 1);
        out << (i + 1 < members.size() ? ",\n" : "\n");
      }
      write_indent(out, depth);
      out << '}';
    }
  }
  if (depth == 0) out << '\n';
}

std::string Value::dump_string() const {
  std::ostringstream out;
  dump(out);
  return out.str();
}

// ------------------------------------------------------------------ parse

namespace {

class Parser {
 public:
  /// Containers nest recursively; cap the depth so a hostile document of
  /// thousands of '[' bytes fails with ParseError instead of overflowing
  /// the stack (the serving layer parses attacker-supplied lines).
  static constexpr int kMaxDepth = 64;

  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  struct DepthGuard {
    explicit DepthGuard(Parser* parser) : parser_(parser) {
      if (++parser_->depth_ > kMaxDepth) parser_->fail("nesting too deep");
    }
    ~DepthGuard() { --parser_->depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;
    Parser* parser_;
  };

  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("json parse error at offset " + std::to_string(pos_) +
                     ": " + what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Value parse_value() {
    const char c = peek();
    switch (c) {
      case '{': {
        const DepthGuard guard(this);
        return parse_object();
      }
      case '[': {
        const DepthGuard guard(this);
        return parse_array();
      }
      case '"': return Value(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value(nullptr);
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object members;
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(members));
    }
    for (;;) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return Value(std::move(members));
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  Value parse_array() {
    expect('[');
    Array items;
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return Value(std::move(items));
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Our writer only escapes control characters; decode the BMP
          // code point as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
    fail("unterminated string");
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    double value = 0.0;
    const char* begin = text_.data() + start;
    const char* end = text_.data() + pos_;
    auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end || begin == end) {
      pos_ = start;
      fail("bad number");
    }
    return Value(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace utilrisk::obs::json
