// Per-run JSON manifests: what produced this output?
//
// Every CLI invocation (and anything else that opts in) emits one JSON
// document next to its outputs recording the command, its effective
// configuration, the seeds, the source revision, wall-clock timings and a
// metric snapshot — enough to reproduce or audit the run months later.
// Manifests parse back (see from_json) so tooling and the obs test suite
// can round-trip them.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace utilrisk::obs {

/// `git describe --always --dirty` of the source tree at configure time
/// ("unknown" outside a git checkout).
[[nodiscard]] const char* build_git_describe();

/// Current wall-clock time as ISO 8601 UTC ("2026-08-06T12:34:56Z").
[[nodiscard]] std::string utc_timestamp_now();

struct RunManifest {
  std::string tool = "utilrisk";
  std::string schema = "utilrisk.run_manifest/1";
  std::string command;             ///< subcommand, e.g. "sweep"
  std::vector<std::string> argv;   ///< raw arguments as typed
  std::string git_describe;        ///< source revision (build_git_describe)
  std::string started_at_utc;      ///< wall-clock start, ISO 8601 UTC
  double wall_seconds = 0.0;       ///< command wall time
  /// Effective configuration: every declared option with the value the run
  /// actually used (parsed or default).
  std::vector<std::pair<std::string, std::string>> config;
  std::vector<std::uint64_t> seeds;
  /// Free-form numeric result summary (simulations run, events, ...).
  std::vector<std::pair<std::string, double>> stats;
  /// Canonical result digest of the run (verify/run_digest.hpp for a
  /// single simulation, sweep/golden digest otherwise), 16 lowercase hex
  /// chars; empty when the command produced none. Two manifests with the
  /// same digest attest bit-identical results, whatever the wall times
  /// and worker counts say.
  std::string digest;
  MetricSnapshot metrics;

  [[nodiscard]] json::Value to_json() const;
  void write(std::ostream& out) const;

  [[nodiscard]] static RunManifest from_json(const json::Value& value);
  /// Parses a serialised manifest; throws json::ParseError /
  /// std::runtime_error on malformed input.
  [[nodiscard]] static RunManifest parse(const std::string& text);
};

/// Canonical manifest filename for a subcommand.
[[nodiscard]] std::string manifest_filename(const std::string& command);

/// Writes `<dir>/<manifest_filename(command)>` (creating `dir`), returns
/// the path. Throws std::runtime_error when the file cannot be written.
std::string write_manifest(const RunManifest& manifest,
                           const std::string& dir);

/// Loads and parses a manifest file.
[[nodiscard]] RunManifest read_manifest(const std::string& path);

}  // namespace utilrisk::obs
