#include "obs/progress.hpp"

#include <cmath>
#include <iostream>
#include <sstream>

namespace utilrisk::obs {

namespace {

std::string format_seconds(double seconds) {
  std::ostringstream out;
  out.precision(seconds < 10.0 ? 2 : 3);
  out << seconds << " s";
  return out.str();
}

}  // namespace

ProgressReporter::ProgressReporter() : ProgressReporter(Options{}) {}

ProgressReporter::ProgressReporter(Options options)
    : options_(std::move(options)) {
  if (options_.sink == nullptr) options_.sink = &std::cerr;
}

ProgressReporter::~ProgressReporter() { end(); }

void ProgressReporter::begin(std::size_t total, std::size_t workers,
                             std::function<std::size_t()> busy_workers) {
  end();
  completed_.store(0, std::memory_order_relaxed);
  total_ = total;
  workers_ = workers;
  busy_ = std::move(busy_workers);
  started_ = std::chrono::steady_clock::now();
  active_ = true;
  if (options_.interval_seconds <= 0.0) return;
  const auto interval = std::chrono::duration<double>(
      options_.interval_seconds);
  thread_ = std::jthread([this, interval](std::stop_token stop) {
    std::unique_lock lock(mutex_);
    for (;;) {
      // wait_for returns true on stop; spurious wakeups just print early,
      // which is harmless.
      if (cv_.wait_for(lock, stop, interval, [&stop] {
            return stop.stop_requested();
          })) {
        return;
      }
      print_line(/*final=*/false);
    }
  });
}

void ProgressReporter::note_done(std::size_t n) {
  completed_.fetch_add(n, std::memory_order_relaxed);
}

void ProgressReporter::end() {
  if (!active_) return;
  if (thread_.joinable()) {
    thread_.request_stop();
    cv_.notify_all();
    thread_.join();
    thread_ = std::jthread();
  }
  // interval <= 0 means fully silent — no periodic lines, no final line.
  if (options_.interval_seconds > 0.0 && options_.final_line && total_ > 0) {
    std::lock_guard lock(mutex_);
    print_line(/*final=*/true);
  }
  active_ = false;
  busy_ = nullptr;
}

void ProgressReporter::print_line(bool final) {
  // Called with mutex_ held (reporter thread or end()).
  const std::size_t done = completed_.load(std::memory_order_relaxed);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_)
          .count();
  std::ostringstream line;
  line << '[' << options_.label << "] " << done << '/' << total_ << " runs";
  if (total_ > 0) {
    line << " (" << std::lround(100.0 * static_cast<double>(done) /
                                static_cast<double>(total_))
         << "%)";
  }
  if (final) {
    line << " done in " << format_seconds(elapsed);
  } else {
    if (done > 0 && done < total_) {
      const double eta = elapsed * static_cast<double>(total_ - done) /
                         static_cast<double>(done);
      line << ", eta " << format_seconds(eta);
    }
    if (busy_ && workers_ > 0) {
      line << ", workers busy " << busy_() << '/' << workers_;
    }
  }
  (*options_.sink) << line.str() << '\n';
  options_.sink->flush();
  lines_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace utilrisk::obs
