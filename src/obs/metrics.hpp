// Thread-safe metrics registry: counters, gauges, fixed-bucket histograms.
//
// The contract the instrumented layers (sim kernel, service, parallel
// executor) build on:
//
//  - Registration (counter()/gauge()/histogram()) is mutex-guarded and
//    returns a reference that stays valid for the registry's lifetime, so
//    hot paths register once and keep the pointer.
//  - Updates (inc/set/add/observe) are lock-free relaxed atomics — safe
//    from any number of threads, never ordering-significant.
//  - Near-zero cost when disabled: instrumented components resolve their
//    metric pointers via `counter_or_null` & friends, which return nullptr
//    when no registry is attached or the registry is disabled, leaving a
//    single never-taken null branch on the hot path (bench_obs_overhead
//    asserts < 2 % on event-queue-churn kernels).
//  - snapshot() captures every metric into a plain-data MetricSnapshot
//    (JSON-serialisable; embedded in run manifests).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace utilrisk::obs {

/// Monotonically increasing integer metric.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous double metric (queue depth, workers busy, ...).
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  void add(double delta) {
    // fetch_add on atomic<double> is C++20; relaxed is fine — gauges are
    // diagnostics, never synchronisation.
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations v with
/// bounds[i-1] < v <= bounds[i]; one implicit overflow bucket collects
/// v > bounds.back(). Bounds are set at registration and never change.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double value);

  [[nodiscard]] const std::vector<double>& upper_bounds() const {
    return bounds_;
  }
  /// Non-cumulative count of bucket i (the last index is the overflow
  /// bucket, so valid i < upper_bounds().size() + 1).
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  ///< bounds + overflow
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Wall-clock-seconds buckets covering event dispatch through multi-minute
/// sweeps: 1ms .. 600s, roughly geometric.
[[nodiscard]] const std::vector<double>& default_time_buckets();

/// Plain-data capture of one histogram.
struct HistogramSnapshot {
  std::string name;
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> buckets;  ///< upper_bounds.size() + 1 entries
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Point-in-time capture of a registry, ordered by metric name.
struct MetricSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  /// Named counter value, or 0 when absent.
  [[nodiscard]] std::uint64_t counter(const std::string& name) const;

  [[nodiscard]] json::Value to_json() const;
  [[nodiscard]] static MetricSnapshot from_json(const json::Value& value);
};

class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Disabled registries hand out no metric pointers via the *_or_null
  /// helpers; flipping enabled later only affects components attached
  /// afterwards (attachment caches pointers).
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Finds or creates; references stay valid for the registry's lifetime.
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  /// `upper_bounds` applies only on first registration; a second caller
  /// with different bounds gets the existing histogram.
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     std::vector<double> upper_bounds);

  [[nodiscard]] MetricSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  // std::map: snapshots come out name-sorted; unique_ptr: stable addresses
  // across registrations.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::atomic<bool> enabled_;
};

/// The disabled-path helpers: null when `registry` is null or disabled, so
/// call sites reduce to `if (ptr) ptr->inc();`.
[[nodiscard]] Counter* counter_or_null(MetricsRegistry* registry,
                                       const std::string& name);
[[nodiscard]] Gauge* gauge_or_null(MetricsRegistry* registry,
                                   const std::string& name);
[[nodiscard]] Histogram* histogram_or_null(MetricsRegistry* registry,
                                           const std::string& name,
                                           std::vector<double> upper_bounds);

}  // namespace utilrisk::obs
