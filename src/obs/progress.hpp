// Periodic progress reporting for long sweeps.
//
// A dedicated reporter thread (std::jthread) wakes every
// `interval_seconds` of *wall* time and prints one line — completed/total
// runs, percentage, ETA, workers busy — so a multi-hour parallel sweep is
// observable while it runs instead of only after it finishes. Workers call
// the lock-free note_done(); the reporter thread is the only writer to the
// sink.
//
// Shutdown is cooperative and prompt: end() (or destruction) requests the
// jthread's stop token and wakes the wait, so a sweep that drains early —
// or throws — never leaves a reporter ticking against a dead region
// (the monitor-drain bugfix's wall-clock twin).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>

namespace utilrisk::obs {

class ProgressReporter {
 public:
  struct Options {
    /// Seconds between progress lines; <= 0 disables the reporter thread
    /// entirely (begin/note_done/end stay cheap no-ops).
    double interval_seconds = 5.0;
    /// Where lines go. Defaults to std::cerr so progress never corrupts
    /// machine-readable stdout.
    std::ostream* sink = nullptr;  ///< nullptr = std::cerr
    std::string label = "progress";
    /// Print one final "N/N runs done in S s" line from end().
    bool final_line = true;
  };

  ProgressReporter();
  explicit ProgressReporter(Options options);
  ~ProgressReporter();

  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  /// Starts a reporting region of `total` work items across `workers`
  /// workers. `busy_workers` (optional) is polled from the reporter thread
  /// for the "workers busy" figure — it must stay callable until end().
  /// Calling begin() while a region is active ends it first.
  void begin(std::size_t total, std::size_t workers = 0,
             std::function<std::size_t()> busy_workers = {});

  /// Marks `n` work items finished. Lock-free; any thread.
  void note_done(std::size_t n = 1);

  /// Ends the region: stops and joins the reporter thread, then prints the
  /// final summary line (if configured). Idempotent; returns promptly even
  /// when the region drained long before the next tick.
  void end();

  [[nodiscard]] std::size_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }
  /// Lines written so far (periodic + final) — observability of the
  /// observer, for tests.
  [[nodiscard]] std::uint64_t lines_printed() const {
    return lines_.load(std::memory_order_relaxed);
  }

 private:
  void print_line(bool final);

  Options options_;
  std::atomic<std::size_t> completed_{0};
  std::atomic<std::uint64_t> lines_{0};
  std::size_t total_ = 0;
  std::size_t workers_ = 0;
  std::function<std::size_t()> busy_;
  std::chrono::steady_clock::time_point started_{};
  bool active_ = false;

  std::mutex mutex_;  ///< guards thread lifecycle + sink writes
  std::condition_variable_any cv_;
  std::jthread thread_;  ///< last member: joins before state dies
};

}  // namespace utilrisk::obs
