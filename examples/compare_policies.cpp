// Compare all Table V policies under one economic model with the paper's
// separate and integrated risk analysis, on a reduced sweep.
//
//   $ ./compare_policies [commodity|bid] [jobs]
//
// Runs the full twelve-scenario sweep (Set B: the trace's own estimates),
// prints each objective's risk plot and the integrated four-objective
// ranking — the condensed version of what the per-figure benches emit.
#include <iostream>
#include <string>

#include "core/report.hpp"
#include "exp/experiment.hpp"
#include "exp/figures.hpp"

int main(int argc, char** argv) {
  using namespace utilrisk;

  const std::string model_name = argc > 1 ? argv[1] : "bid";
  const economy::EconomicModel model =
      model_name == "commodity" ? economy::EconomicModel::CommodityMarket
                                : economy::EconomicModel::BidBased;

  exp::ExperimentConfig config;
  config.model = model;
  config.set = exp::ExperimentSet::B;
  config.trace.job_count =
      argc > 2 ? static_cast<std::uint32_t>(std::stoul(argv[2])) : 1000;

  std::cout << "Sweeping 12 scenarios x 6 values x "
            << policy::policies_for_model(model).size() << " policies on "
            << config.trace.job_count << "-job workloads ("
            << economy::to_string(model) << " model, Set B)...\n";

  exp::ExperimentRunner runner(config);
  const exp::SweepResult sweep = runner.run_sweep();
  std::cout << runner.simulations_run() << " simulations executed.\n";

  for (core::Objective objective : core::kAllObjectives) {
    const core::RiskPlot plot = exp::separate_plot(
        sweep, objective,
        "separate risk: " + std::string(core::to_string(objective)));
    core::write_ascii_scatter(std::cout, plot);
    std::cout << '\n';
  }

  const std::vector<core::Objective> all(core::kAllObjectives.begin(),
                                         core::kAllObjectives.end());
  const core::RiskPlot integrated =
      exp::integrated_plot(sweep, all, "integrated risk: all objectives");
  core::write_ascii_scatter(std::cout, integrated);
  core::write_ranking_table(
      std::cout,
      core::rank_policies(integrated.series, core::RankBy::BestPerformance),
      core::RankBy::BestPerformance);
  core::write_ranking_table(
      std::cout,
      core::rank_policies(integrated.series, core::RankBy::BestVolatility),
      core::RankBy::BestVolatility);
  return 0;
}
