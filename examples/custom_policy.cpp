// Extending the library with a custom resource-management policy.
//
// "ValueDensity" is a bid-model policy that admits jobs by expected value
// density (bid per processor-second) with a simple utilisation guard, runs
// space-shared, and orders its queue by value density. The example plugs
// it into the same service/metrics pipeline as the built-in policies and
// scores it against FCFS-BF and FirstReward on the four objectives —
// demonstrating exactly what a provider would do before deploying a new
// policy: an a-priori risk analysis against the incumbents.
#include <algorithm>
#include <iostream>
#include <memory>

#include "cluster/space_shared.hpp"
#include "economy/penalty.hpp"
#include "policy/policy.hpp"
#include "service/computing_service.hpp"
#include "workload/workload.hpp"

namespace {

using namespace utilrisk;

class ValueDensityPolicy final : public policy::Policy {
 public:
  ValueDensityPolicy(const policy::PolicyContext& context,
                     policy::PolicyHost& host)
      : Policy(context, host),
        cluster_(std::make_unique<cluster::SpaceSharedCluster>(
            *context.simulator, context.machine)) {}

  [[nodiscard]] std::string_view name() const override {
    return "ValueDensity";
  }

  void on_submit(const workload::Job& job) override {
    if (job.procs > cluster_->total_procs()) {
      host().notify_rejected(job);
      return;
    }
    // Admission: value density must beat the base price, and the backlog
    // (queued estimated work) must stay under one deadline's worth of
    // machine time — a crude but transparent overload guard.
    const double density =
        job.budget / (job.estimated_runtime * job.procs);
    const double backlog_limit =
        static_cast<double>(cluster_->total_procs()) * job.deadline_duration;
    if (density < pricing().base_price || backlog_work() > backlog_limit) {
      host().notify_rejected(job);
      return;
    }
    host().notify_accepted(job, job.budget);
    queue_.push_back(job);
    dispatch();
  }

 private:
  [[nodiscard]] double backlog_work() const {
    double work = 0.0;
    for (const workload::Job& job : queue_) {
      work += job.estimated_runtime * job.procs;
    }
    return work;
  }

  void dispatch() {
    std::sort(queue_.begin(), queue_.end(),
              [](const workload::Job& a, const workload::Job& b) {
                const double da = a.budget / (a.estimated_runtime * a.procs);
                const double db = b.budget / (b.estimated_runtime * b.procs);
                if (da != db) return da > db;
                return a.id < b.id;
              });
    for (std::size_t i = 0; i < queue_.size();) {
      if (cluster_->can_start(queue_[i].procs)) {
        const workload::Job job = queue_[i];
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
        host().notify_started(job);
        cluster_->start(job,
                        [this, job](workload::JobId, sim::SimTime finish) {
                          host().notify_finished(job, finish);
                          dispatch();
                        });
      } else {
        ++i;  // keep scanning: value density backfills implicitly
      }
    }
  }

  std::unique_ptr<cluster::SpaceSharedCluster> cluster_;
  std::vector<workload::Job> queue_;
};

/// Runs one policy (built-in via simulate(), or the custom one through a
/// hand-built service loop) and prints the objectives.
core::ObjectiveValues run_custom(const std::vector<workload::Job>& jobs) {
  sim::Simulator simk;
  policy::PolicyContext context;
  context.simulator = &simk;
  context.model = economy::EconomicModel::BidBased;

  // Minimal host: reuse the service's metrics collector semantics.
  class Host final : public policy::PolicyHost {
   public:
    explicit Host(sim::Simulator& simk) : simk_(&simk) {}
    service::MetricsCollector metrics;
    void notify_accepted(const workload::Job& job,
                         economy::Money quoted) override {
      metrics.record_accepted(job.id, simk_->now(), quoted);
    }
    void notify_rejected(const workload::Job& job) override {
      metrics.record_rejected(job.id, simk_->now());
    }
    void notify_started(const workload::Job& job) override {
      metrics.record_started(job.id, simk_->now());
    }
    void notify_finished(const workload::Job& job,
                         sim::SimTime finish) override {
      metrics.record_finished(job.id, finish,
                              economy::bid_utility(job, finish));
    }

   private:
    sim::Simulator* simk_;
  } host(simk);

  ValueDensityPolicy policy(context, host);
  for (const workload::Job& job : jobs) {
    simk.schedule_at(job.submit_time, [&host, &policy, job] {
      host.metrics.record_submitted(job, job.submit_time);
      policy.on_submit(job);
    });
  }
  simk.run();
  return core::compute_objectives(host.metrics.objective_inputs());
}

}  // namespace

int main() {
  workload::SyntheticSdscConfig trace;
  trace.job_count = 1500;
  const workload::WorkloadBuilder builder(trace);
  const auto jobs = builder.build(workload::QosConfig{}, 0.25, 100.0);

  std::cout << "Custom policy vs incumbents (bid model, Set B estimates):\n";
  std::cout << "ValueDensity:  " << run_custom(jobs) << '\n';
  for (auto kind : {policy::PolicyKind::FcfsBf,
                    policy::PolicyKind::FirstReward,
                    policy::PolicyKind::LibraRiskD}) {
    const auto report =
        service::simulate(jobs, kind, economy::EconomicModel::BidBased);
    std::cout << policy::to_string(kind) << ":  " << report.objectives
              << '\n';
  }
  std::cout << "\n(Each row: eqns 1-4 of the paper — lower wait, higher\n"
               "SLA/reliability/profitability is better.)\n";
  return 0;
}
