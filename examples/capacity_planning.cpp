// Capacity planning with the simulator: the workload the paper's intro
// motivates — a provider must decide how much hardware to operate so that
// SLAs hold without stranding capital.
//
// Sweeps machine sizes for a fixed demand stream and reports, per size,
// the four objectives under LibraRiskD (bid model), then picks the
// smallest machine that keeps SLA fulfilment above a target.
#include <iomanip>
#include <iostream>

#include "service/computing_service.hpp"
#include "workload/workload.hpp"

int main(int argc, char** argv) {
  using namespace utilrisk;

  const double sla_target = argc > 1 ? std::stod(argv[1]) : 70.0;

  workload::SyntheticSdscConfig trace;
  trace.job_count = 1500;
  const workload::WorkloadBuilder builder(trace);
  const auto jobs = builder.build(workload::QosConfig{},
                                  /*arrival_delay_factor=*/0.25,
                                  /*inaccuracy=*/100.0);

  std::cout << "Capacity planning: smallest machine with SLA >= "
            << sla_target << "% (LibraRiskD, bid model, " << trace.job_count
            << " jobs at 4x trace load)\n\n";
  std::cout << std::left << std::setw(8) << "nodes" << std::right
            << std::setw(8) << "SLA%" << std::setw(10) << "Rel%"
            << std::setw(10) << "Prof%" << std::setw(14) << "utility $"
            << '\n';

  std::uint32_t chosen = 0;
  for (std::uint32_t nodes : {32u, 64u, 96u, 128u, 192u, 256u, 384u}) {
    cluster::MachineConfig machine;
    machine.node_count = nodes;
    const auto report =
        service::simulate(jobs, policy::PolicyKind::LibraRiskD,
                          economy::EconomicModel::BidBased, machine);
    std::cout << std::left << std::setw(8) << nodes << std::right
              << std::fixed << std::setprecision(2) << std::setw(8)
              << report.objectives.sla << std::setw(10)
              << report.objectives.reliability << std::setw(10)
              << report.objectives.profitability << std::setw(14)
              << report.inputs.total_utility << '\n';
    if (chosen == 0 && report.objectives.sla >= sla_target) {
      chosen = nodes;
    }
  }

  if (chosen != 0) {
    std::cout << "\n=> provision " << chosen << " nodes to meet the "
              << sla_target << "% SLA target.\n";
  } else {
    std::cout << "\n=> no size in the sweep meets the target; demand "
                 "exceeds what admission-controlled capacity can serve.\n";
  }
  return 0;
}
