// Operational monitoring: attach the ServiceMonitor (§3.3's assumed
// monitoring mechanism) to a live service and emit the dashboard time
// series a provider would watch — backlog, utilisation, rolling
// objectives — plus a terminal sparkline of the utilisation curve.
//
//   $ ./sla_dashboard [policy] [csv-path]
#include <fstream>
#include <iostream>
#include <string>

#include "service/computing_service.hpp"
#include "service/monitor.hpp"
#include "workload/workload.hpp"

namespace {

/// Crude terminal sparkline over [0, 1] values.
void sparkline(std::ostream& out, const char* label,
               const std::vector<double>& values) {
  static const char* levels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  out << label << " |";
  for (double v : values) {
    const int idx = std::clamp(static_cast<int>(v * 8.0), 0, 7);
    out << levels[idx];
  }
  out << "|\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace utilrisk;

  const std::string policy_name = argc > 1 ? argv[1] : "LibraRiskD";
  const std::string csv_path = argc > 2 ? argv[2] : "";

  workload::SyntheticSdscConfig trace;
  trace.job_count = 1000;
  const workload::WorkloadBuilder builder(trace);
  const auto jobs = builder.build(workload::QosConfig{}, 0.25, 100.0);

  sim::Simulator simk;
  policy::PolicyContext context;
  context.simulator = &simk;
  context.model = economy::EconomicModel::BidBased;

  service::ComputingService svc(
      simk, policy::parse_policy_kind(policy_name), context);
  // Sample every 6 simulated hours across the workload's span.
  const sim::SimTime horizon =
      jobs.back().submit_time + 48.0 * sim::duration::kHour;
  service::ServiceMonitor monitor(simk, svc, 6.0 * sim::duration::kHour,
                                  horizon);
  svc.submit_all(jobs);
  simk.run();

  const auto& samples = monitor.samples();
  std::cout << "Policy " << policy_name << ", " << jobs.size()
            << " jobs, " << samples.size() << " monitor samples (every 6h)\n";

  std::vector<double> util, backlog, sla;
  double max_backlog = 1.0;
  for (const auto& s : samples) {
    max_backlog = std::max(max_backlog, static_cast<double>(s.in_flight));
  }
  for (const auto& s : samples) {
    util.push_back(s.utilization);
    backlog.push_back(static_cast<double>(s.in_flight) / max_backlog);
    sla.push_back(s.objectives.sla / 100.0);
  }
  sparkline(std::cout, "utilisation ", util);
  sparkline(std::cout, "backlog     ", backlog);
  sparkline(std::cout, "SLA%        ", sla);

  const auto& last = samples.back();
  std::cout << "\nfinal state: " << last.fulfilled << " fulfilled, "
            << last.violated << " violated, " << last.rejected
            << " rejected; utility $" << last.utility_to_date
            << "; utilisation " << last.utilization << '\n';

  if (!csv_path.empty()) {
    std::ofstream csv(csv_path);
    monitor.write_csv(csv);
    std::cout << "[wrote " << csv_path << "]\n";
  }
  return 0;
}
