// The free-market vision of §3: "numerous commercial computing services
// ... will actively compete with one another to increase their market
// share of service users ... users can switch to any computing service
// whenever they want. Therefore, ignoring user-centric objectives is
// likely to result in dwindling number of users."
//
// Two providers share one simulated world. Users route each job by
// reputation — the provider's observed SLA fulfilment ratio so far — with
// a little exploration, so a provider that rejects or violates SLAs
// bleeds market share in proportion. The run prints the market-share
// trajectory and each provider's four objectives.
//
//   $ ./market_competition [policyA] [policyB]
#include <iomanip>
#include <iostream>
#include <string>

#include "service/computing_service.hpp"
#include "sim/rng.hpp"
#include "workload/workload.hpp"

namespace {

using namespace utilrisk;

/// Observed fulfilment ratio of a provider (Laplace-smoothed so new
/// providers start neutral).
double reputation(const service::ComputingService& provider) {
  const auto inputs = provider.metrics().objective_inputs();
  return (static_cast<double>(inputs.fulfilled) + 1.0) /
         (static_cast<double>(inputs.submitted) + 2.0);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name_a = argc > 1 ? argv[1] : "LibraRiskD";
  const std::string name_b = argc > 2 ? argv[2] : "FirstReward";

  workload::SyntheticSdscConfig trace;
  trace.job_count = 2000;
  const workload::WorkloadBuilder builder(trace);
  const auto jobs = builder.build(workload::QosConfig{}, 0.5, 100.0);

  sim::Simulator simk;
  policy::PolicyContext context;
  context.simulator = &simk;
  context.model = economy::EconomicModel::BidBased;
  // Each provider operates half the paper's machine: competition splits
  // the market's capacity.
  context.machine.node_count = 64;

  service::ComputingService provider_a(
      simk, policy::parse_policy_kind(name_a), context);
  service::ComputingService provider_b(
      simk, policy::parse_policy_kind(name_b), context);

  sim::Rng router_rng(7);
  std::uint64_t routed_a = 0;
  std::uint64_t routed_b = 0;
  std::vector<std::pair<double, double>> share_curve;  // (time, share of A)

  for (const workload::Job& job : jobs) {
    simk.schedule_at(job.submit_time, [&, job] {
      // Reputation routing with 10 % exploration.
      const double rep_a = reputation(provider_a);
      const double rep_b = reputation(provider_b);
      bool choose_a = rep_a >= rep_b;
      if (router_rng.bernoulli(0.10)) choose_a = !choose_a;
      if (choose_a) {
        ++routed_a;
        provider_a.submit_all({job});
      } else {
        ++routed_b;
        provider_b.submit_all({job});
      }
      if ((routed_a + routed_b) % 100 == 0) {
        share_curve.emplace_back(
            simk.now(),
            static_cast<double>(routed_a) /
                static_cast<double>(routed_a + routed_b));
      }
    });
  }
  simk.run();

  std::cout << "Market competition (" << jobs.size() << " users, bid model,"
            << " 64-node providers)\n"
            << "  provider A: " << name_a << "\n  provider B: " << name_b
            << "\n\nmarket share of A over time:\n";
  for (const auto& [time, share] : share_curve) {
    const int bars = static_cast<int>(share * 40.0);
    std::cout << std::fixed << std::setprecision(0) << std::setw(10) << time
              << "s |" << std::string(static_cast<std::size_t>(bars), '#')
              << std::string(static_cast<std::size_t>(40 - bars), '.')
              << "| " << std::setprecision(1) << share * 100.0 << "%\n";
  }

  auto print_provider = [](const char* label,
                           const service::ComputingService& provider,
                           std::uint64_t routed) {
    const auto inputs = provider.metrics().objective_inputs();
    const auto objectives = core::compute_objectives(inputs);
    std::cout << label << ": " << routed << " users, " << objectives
              << ", reputation " << std::setprecision(3)
              << reputation(provider) << '\n';
  };
  std::cout << '\n';
  print_provider("A", provider_a, routed_a);
  print_provider("B", provider_b, routed_b);

  std::cout << "\nThe provider that fulfils more SLAs attracts the users —\n"
               "the paper's argument for weighting user-centric objectives.\n";
  return 0;
}
