// A-priori risk analysis (the paper's proposed follow-on): measure once,
// then recommend policies for *future* operating points — different
// objective priorities and risk appetites — without re-simulating.
//
//   $ ./policy_advisor [commodity|bid] [jobs]
#include <iomanip>
#include <iostream>
#include <string>

#include "core/advisor.hpp"
#include "exp/experiment.hpp"
#include "exp/figures.hpp"

int main(int argc, char** argv) {
  using namespace utilrisk;

  const std::string model_name = argc > 1 ? argv[1] : "bid";
  const economy::EconomicModel model =
      model_name == "commodity" ? economy::EconomicModel::CommodityMarket
                                : economy::EconomicModel::BidBased;

  exp::ExperimentConfig config;
  config.model = model;
  config.set = exp::ExperimentSet::B;  // realistic: inaccurate estimates
  config.trace.job_count =
      argc > 2 ? static_cast<std::uint32_t>(std::stoul(argv[2])) : 1000;

  std::cout << "Measuring once (" << economy::to_string(model)
            << " model, Set B)...\n";
  exp::ExperimentRunner runner(config);
  const core::AdvisorInput measured =
      exp::advisor_input(runner.run_sweep());
  std::cout << runner.simulations_run() << " simulations executed.\n\n";

  struct Persona {
    const char* name;
    core::AdvisorConfig config;
  };
  // Weights in (wait, SLA, reliability, profitability) order.
  const Persona personas[] = {
      {"balanced provider (paper defaults)",
       {{0.25, 0.25, 0.25, 0.25}, 0.5}},
      {"user-centric SLA shop (no profit weight)",
       {{0.30, 0.35, 0.35, 0.00}, 0.5}},
      {"profit maximiser, risk-tolerant", {{0.05, 0.15, 0.10, 0.70}, 0.1}},
      {"ultra-conservative operator", {{0.25, 0.25, 0.25, 0.25}, 2.0}},
  };

  // Crossover analysis (§4.2's weight flexibility): at which profitability
  // weight does the recommendation flip away from the user-centric winner?
  std::cout << "== profitability-weight sensitivity ==\n";
  const auto sweep = core::weight_sensitivity(
      measured, core::Objective::Profitability, 11);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    std::cout << "  weight " << std::fixed << std::setprecision(1)
              << sweep[i].weight << ": " << sweep[i].winner;
    if (i > 0 && sweep[i].winner != sweep[i - 1].winner) {
      std::cout << "   <-- crossover";
    }
    std::cout << '\n';
  }
  std::cout << '\n';

  for (const Persona& persona : personas) {
    const core::AdvisorReport report =
        core::advise(measured, persona.config);
    std::cout << "== " << persona.name << " ==\n"
              << report.summary << "\n";
    std::cout << std::left << std::setw(14) << "policy" << std::right
              << std::setw(10) << "score" << std::setw(10) << "perf"
              << std::setw(10) << "vol" << '\n';
    for (const core::PolicyAdvice& advice : report.ranked) {
      std::cout << std::left << std::setw(14) << advice.policy << std::right
                << std::fixed << std::setprecision(3) << std::setw(10)
                << advice.score << std::setw(10) << advice.mean_performance
                << std::setw(10) << advice.mean_volatility << '\n';
    }
    std::cout << '\n';
  }
  return 0;
}
