// Quickstart: simulate one commercial computing service under one policy
// and print the four objectives.
//
//   $ ./quickstart [policy] [commodity|bid]
//
// Defaults: Libra under the commodity market model, on a 1000-job
// synthetic SDSC SP2 workload.
#include <iostream>
#include <string>

#include "service/computing_service.hpp"
#include "workload/trace_stats.hpp"
#include "workload/workload.hpp"

int main(int argc, char** argv) {
  using namespace utilrisk;

  const std::string policy_name = argc > 1 ? argv[1] : "Libra";
  const std::string model_name = argc > 2 ? argv[2] : "commodity";

  policy::PolicyKind kind;
  try {
    kind = policy::parse_policy_kind(policy_name);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\nKnown policies:";
    for (auto k : policy::all_policy_kinds()) {
      std::cerr << ' ' << policy::to_string(k);
    }
    std::cerr << '\n';
    return 1;
  }
  const economy::EconomicModel model =
      model_name == "bid" ? economy::EconomicModel::BidBased
                          : economy::EconomicModel::CommodityMarket;

  // 1. Generate a workload: a synthetic SDSC-SP2-like trace plus SLA terms
  //    (deadline / budget / penalty) from the two-urgency-class model.
  workload::SyntheticSdscConfig trace;
  trace.job_count = 1000;
  const workload::WorkloadBuilder builder(trace);
  const auto jobs = builder.build(workload::QosConfig{},
                                  /*arrival_delay_factor=*/0.25,
                                  /*inaccuracy_percent=*/100.0);

  std::cout << "Workload:\n"
            << workload::compute_trace_stats(jobs, 128) << '\n';

  // 2. Run the service to quiescence.
  const service::SimulationReport report =
      service::simulate(jobs, kind, model);

  // 3. Inspect the four objectives (paper eqns 1-4).
  std::cout << "Policy " << policy::to_string(kind) << " under the "
            << economy::to_string(model) << " model:\n"
            << "  submitted:   " << report.inputs.submitted << " jobs\n"
            << "  accepted:    " << report.inputs.accepted << " jobs\n"
            << "  fulfilled:   " << report.inputs.fulfilled << " SLAs\n"
            << "  objectives:  " << report.objectives << '\n'
            << "  sim events:  " << report.events_dispatched << '\n';
  return 0;
}
