#!/usr/bin/env bash
# Crash-recovery and chaos smoke for `utilrisk serve` (wired into CI's
# serving-smoke job; also runnable locally).
#
# Phase 1 — graceful determinism: run a seeded closed-loop stream against
#   a journaled server, shut it down cleanly, then recover the journal in
#   a fresh process. The recovery banner digest must be byte-identical to
#   the digest the load generator computed on the client side.
# Phase 2 — crash: kill -9 a journaled server mid-load, restart it, and
#   require a non-empty digest-verified recovery (the server refuses to
#   start on any divergence) that still serves fresh traffic cleanly.
# Phase 3 — chaos: hostile connections (disconnects, torn writes,
#   malformed frames, slow-loris) against the recovered journal, then a
#   clean probe stream; `loadgen --chaos` exits non-zero if the server
#   crashed, hung, or corrupted its digest.
# Phase 4 — sharded crash: kill -9 a 2-shard journaled server mid-way
#   through a Zipf multi-tenant stream, recover with the same shard
#   count (per-shard journals, merged digest banner), verify a mismatched
#   --shards is refused, and require the recovered server to serve a
#   fresh stream cleanly.
# Phase 5 — advise-auto switches: an --advise-auto server under a
#   mix-shift stream journals its live policy switches ("sw" records).
#   Graceful recovery must replay them into the byte-identical session
#   digest, and a kill -9'd server must still recover and keep serving.
#
# Env: UTILRISK (binary, default ./build/tools/utilrisk),
#      SMOKE_OUT (artefact dir, default smoke_out).
set -euo pipefail

UTILRISK="${UTILRISK:-./build/tools/utilrisk}"
OUT="${SMOKE_OUT:-smoke_out}"
mkdir -p "$OUT"
SOCK="$OUT/serve.sock"
SERVER=""

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

cleanup() {
  if [ -n "$SERVER" ] && kill -0 "$SERVER" 2>/dev/null; then
    kill -9 "$SERVER" 2>/dev/null || true
  fi
}
trap cleanup EXIT

start_server() { # args: journal_dir log_file [extra serve flags...]
  local journal="$1" log="$2"
  shift 2
  rm -f "$SOCK"
  "$UTILRISK" serve --socket "$SOCK" --journal "$journal" --fsync batch \
    --manifest-dir "" "$@" > "$log" 2>&1 &
  SERVER=$!
  for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && return 0
    # A recovery refusal (divergent digest) exits before binding.
    kill -0 "$SERVER" 2>/dev/null || { cat "$log"; fail "server died on startup"; }
    sleep 0.1
  done
  cat "$log"
  fail "server socket never appeared"
}

stop_server() {
  kill -TERM "$SERVER"
  wait "$SERVER" || fail "server exited non-zero on SIGTERM drain"
  SERVER=""
}

banner_digest() { # arg: log_file -> recovery banner digest
  sed -n 's/.*journalled request(s); digest \([0-9a-f]*\)\].*/\1/p' "$1" | head -1
}

echo "== phase 1: graceful session, then digest-verified recovery =="
J1="$OUT/journal_graceful"
rm -rf "$J1"
start_server "$J1" "$OUT/serve_graceful.txt"
"$UTILRISK" loadgen --socket "$SOCK" --requests 3000 --seed 42 \
  --manifest-dir "" | tee "$OUT/loadgen_graceful.txt"
client_digest=$(awk '/^digest:/ { print $2 }' "$OUT/loadgen_graceful.txt")
[ -n "$client_digest" ] || fail "loadgen printed no digest"
stop_server
start_server "$J1" "$OUT/serve_recovered.txt"
stop_server
cat "$OUT/serve_recovered.txt"
recovered_digest=$(banner_digest "$OUT/serve_recovered.txt")
echo "client digest:    $client_digest"
echo "recovered digest: $recovered_digest"
[ "$recovered_digest" = "$client_digest" ] \
  || fail "recovery digest diverged from the client's"

echo "== phase 2: kill -9 mid-load, recover, keep serving =="
J2="$OUT/journal_crash"
rm -rf "$J2"
start_server "$J2" "$OUT/serve_crash.txt"
"$UTILRISK" loadgen --socket "$SOCK" --requests 200000 --seed 7 \
  --manifest-dir "" > "$OUT/loadgen_crash.txt" 2>&1 &
LOADGEN=$!
sleep 2
kill -9 "$SERVER"
wait "$SERVER" 2>/dev/null || true
SERVER=""
wait "$LOADGEN" 2>/dev/null || true # severed mid-stream; failure expected
echo "journal segments after crash:"
ls -l "$J2"
start_server "$J2" "$OUT/serve_crash_recovered.txt"
replayed=$(sed -n 's/.*\[recovered \([0-9]*\) journalled.*/\1/p' \
  "$OUT/serve_crash_recovered.txt" | head -1)
echo "replayed after kill -9: ${replayed:-none}"
[ -n "$replayed" ] && [ "$replayed" -gt 0 ] \
  || fail "crash recovery replayed nothing"
# The recovered server must still answer a fresh clean stream in full.
"$UTILRISK" loadgen --socket "$SOCK" --requests 500 --seed 11 \
  --manifest-dir "" > "$OUT/loadgen_after_recovery.txt" \
  || fail "recovered server dropped responses"

echo "== phase 3: chaos against the recovered server =="
"$UTILRISK" loadgen --socket "$SOCK" --chaos --seed 1234 \
  --chaos-connections 24 --duration 8 --manifest-dir "" \
  | tee "$OUT/chaos.txt" \
  || fail "chaos probe degraded the server"
stop_server
grep -q "server survived" "$OUT/chaos.txt" || fail "no chaos verdict printed"

echo "== phase 4: 2-shard server, kill -9, merged-digest recovery =="
J4="$OUT/journal_sharded"
rm -rf "$J4"
start_server "$J4" "$OUT/serve_sharded.txt" --shards 2
"$UTILRISK" loadgen --socket "$SOCK" --requests 100000 --seed 9 \
  --workload "zipf:tenants=64,theta=0.9" --connections 2 \
  --manifest-dir "" > "$OUT/loadgen_sharded.txt" 2>&1 &
LOADGEN=$!
sleep 2
kill -9 "$SERVER"
wait "$SERVER" 2>/dev/null || true
SERVER=""
wait "$LOADGEN" 2>/dev/null || true # severed mid-stream; failure expected
echo "per-shard journals after crash:"
ls -l "$J4" "$J4"/shard-* || fail "sharded journal layout missing"
[ -f "$J4/shards.meta" ] || fail "shards.meta marker missing"
# Recovering with a different shard count must refuse — re-routing
# journalled tenants onto other shards would change their state.
if "$UTILRISK" serve --socket "$SOCK" --journal "$J4" --fsync batch \
    --shards 3 --manifest-dir "" > "$OUT/serve_shard_mismatch.txt" 2>&1; then
  fail "server accepted a shard-count mismatch on recovery"
fi
grep -q "shards" "$OUT/serve_shard_mismatch.txt" \
  || fail "mismatch refusal printed no shard diagnostic"
start_server "$J4" "$OUT/serve_sharded_recovered.txt" --shards 2
replayed=$(sed -n 's/.*\[recovered \([0-9]*\) journalled.*/\1/p' \
  "$OUT/serve_sharded_recovered.txt" | head -1)
sharded_digest=$(banner_digest "$OUT/serve_sharded_recovered.txt")
echo "replayed after sharded kill -9: ${replayed:-none} (digest ${sharded_digest:-none})"
[ -n "$replayed" ] && [ "$replayed" -gt 0 ] \
  || fail "sharded crash recovery replayed nothing"
[ -n "$sharded_digest" ] || fail "sharded recovery printed no merged digest"
# The recovered sharded server must still answer a fresh clean stream.
"$UTILRISK" loadgen --socket "$SOCK" --requests 500 --seed 13 \
  --workload "zipf:tenants=64,theta=0.9" --connections 2 \
  --manifest-dir "" > "$OUT/loadgen_sharded_after.txt" \
  || fail "recovered sharded server dropped responses"
stop_server

echo "== phase 5: advise-auto journaled switches, recovery replay =="
J5="$OUT/journal_advise"
rm -rf "$J5"
ADVISE_FLAGS=(--advise-auto --advise-every 16 --advise-window 16)
MIX_FLAGS=(--workload "zipf:tenants=4,theta=0.6"
  --mix-shift "40000:zipf:tenants=4,theta=0.6,mean_runtime=14000,mean_interarrival=120")
start_server "$J5" "$OUT/serve_advise.txt" "${ADVISE_FLAGS[@]}"
"$UTILRISK" loadgen --socket "$SOCK" --requests 2000 --seed 42 \
  "${MIX_FLAGS[@]}" --manifest-dir "" | tee "$OUT/loadgen_advise.txt"
stop_server
advise_digest=$(awk '$1 == "digest:" { print $2 }' "$OUT/serve_advise.txt")
[ -n "$advise_digest" ] || fail "advise-auto session printed no digest"
grep -rh '"type":"sw"' "$J5" > "$OUT/switch_records.txt" || true
switch_count=$(wc -l < "$OUT/switch_records.txt")
echo "journalled switch records: $switch_count"
head -3 "$OUT/switch_records.txt"
[ "$switch_count" -gt 0 ] || fail "advise-auto journalled no switch records"
# Graceful recovery: replaying the journal re-fires the switch logic at
# the same per-key switch points, so the banner digest (switch events
# folded in) must reproduce the session digest byte-for-byte.
start_server "$J5" "$OUT/serve_advise_recovered.txt" "${ADVISE_FLAGS[@]}"
advise_recovered=$(banner_digest "$OUT/serve_advise_recovered.txt")
echo "session digest:   $advise_digest"
echo "recovered digest: $advise_recovered"
[ "$advise_recovered" = "$advise_digest" ] \
  || fail "advise-auto recovery digest diverged (switch replay broken)"
# kill -9 mid-load on the recovered server: the next recovery must still
# replay (switch records included) and serve fresh traffic cleanly.
"$UTILRISK" loadgen --socket "$SOCK" --requests 200000 --seed 7 \
  "${MIX_FLAGS[@]}" --manifest-dir "" > "$OUT/loadgen_advise_crash.txt" 2>&1 &
LOADGEN=$!
sleep 2
kill -9 "$SERVER"
wait "$SERVER" 2>/dev/null || true
SERVER=""
wait "$LOADGEN" 2>/dev/null || true # severed mid-stream; failure expected
start_server "$J5" "$OUT/serve_advise_crash_recovered.txt" "${ADVISE_FLAGS[@]}"
replayed=$(sed -n 's/.*\[recovered \([0-9]*\) journalled.*/\1/p' \
  "$OUT/serve_advise_crash_recovered.txt" | head -1)
echo "replayed after advise-auto kill -9: ${replayed:-none}"
[ -n "$replayed" ] && [ "$replayed" -gt 0 ] \
  || fail "advise-auto crash recovery replayed nothing"
"$UTILRISK" loadgen --socket "$SOCK" --requests 500 --seed 11 \
  "${MIX_FLAGS[@]}" --manifest-dir "" > "$OUT/loadgen_advise_after.txt" \
  || fail "recovered advise-auto server dropped responses"
stop_server

echo "crash-recovery smoke: all phases passed"
