#!/usr/bin/env python3
"""Kernel-scaling regression gate for CI.

Compares fresh BENCH_kernel_scaling.json runs against the checked-in
baseline and fails when any (nodes, policy) point present in both files
regresses in events/sec by more than the allowed fraction. Several
current files may be given; each point is judged on its best run
(best-of-N filters scheduler noise on shared CI runners without masking
real regressions, which the indexed-vs-linear work shows up as integer
multiples, not percents). Digests are compared too: an events/sec change
with a digest change is a behaviour change, not a perf regression, and
gets its own error message.

Usage: check_kernel_scaling.py BASELINE CURRENT... [--max-regression 0.20]
"""
import argparse
import json
import sys


def load_points(path):
    with open(path) as handle:
        data = json.load(handle)
    return {(row["nodes"], row["policy"]): row for row in data["scaling"]}


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current", nargs="+")
    parser.add_argument("--max-regression", type=float, default=0.20)
    args = parser.parse_args()

    baseline = load_points(args.baseline)
    current = {}
    for path in args.current:
        for key, row in load_points(path).items():
            best = current.get(key)
            if best is None or row["events_per_sec"] > best["events_per_sec"]:
                current[key] = row
    shared = sorted(set(baseline) & set(current))
    if not shared:
        print("error: no (nodes, policy) points in common", file=sys.stderr)
        return 1

    failures = []
    for key in shared:
        base, cur = baseline[key], current[key]
        if base["digest"] != cur["digest"]:
            failures.append(
                f"{key}: digest changed {base['digest']} -> {cur['digest']}"
                " (simulation behaviour diverged; regenerate the baseline"
                " only if the change is intended)"
            )
            continue
        ratio = cur["events_per_sec"] / base["events_per_sec"]
        status = "ok" if ratio >= 1.0 - args.max_regression else "REGRESSION"
        print(
            f"{key[1]:>10} n={key[0]:<7} baseline "
            f"{base['events_per_sec']:>12.0f} ev/s  current "
            f"{cur['events_per_sec']:>12.0f} ev/s  ratio {ratio:5.2f}  {status}"
        )
        if status != "ok":
            failures.append(
                f"{key}: {cur['events_per_sec']:.0f} ev/s is "
                f"{(1.0 - ratio) * 100.0:.1f}% below baseline "
                f"{base['events_per_sec']:.0f} ev/s"
            )

    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
