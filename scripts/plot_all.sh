#!/bin/sh
# Renders every figure the benches emitted under bench_out/ to PNG.
# The bench binaries write, per figure, <slug>.dat (gnuplot data blocks)
# and <slug>.gp (a self-contained script in the paper's plot style).
# Requires gnuplot on PATH; run from the repository root after
#   for b in build/bench/*; do $b; done
set -eu
out_dir="${1:-bench_out}"
if ! command -v gnuplot >/dev/null 2>&1; then
  echo "gnuplot not found; install it to render PNGs" >&2
  exit 1
fi
cd "$out_dir"
count=0
for script in *.gp; do
  [ -e "$script" ] || { echo "no .gp scripts in $out_dir" >&2; exit 1; }
  gnuplot "$script"
  count=$((count + 1))
done
echo "rendered $count figures into $out_dir/"
